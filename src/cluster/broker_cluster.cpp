#include "cluster/broker_cluster.h"

#include <algorithm>
#include <limits>
#include <set>
#include <utility>

#include "common/logging.h"
#include "cluster/shard_map.h"
#include "telemetry/metrics.h"

namespace pe::cluster {

namespace {

std::string broker_name_for(BrokerId id) {
  return "broker-" + std::to_string(id);
}

std::string tp_str(const std::string& topic, std::uint32_t partition) {
  return topic + "/" + std::to_string(partition);
}

/// Emulated age of a heartbeat in nanoseconds: wall age scaled by the
/// global time scale, comparable against emulated Durations.
double emulated_age_ns(TimePoint last, TimePoint now) {
  const auto wall =
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - last);
  return static_cast<double>(wall.count()) * Clock::time_scale();
}

}  // namespace

BrokerCluster::BrokerCluster(ClusterOptions options)
    : options_(std::move(options)) {
  const std::uint32_t n = std::max(1u, options_.brokers);
  WriterLock lock(mutex_);
  nodes_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::string name = broker_name_for(i);
    broker::BrokerOptions bo;
    bo.admission = options_.admission;
    if (!options_.durable_root.empty()) {
      bo.durable_dir = options_.durable_root + "/" + name;
      bo.storage = options_.storage;
    }
    auto b = std::make_shared<broker::Broker>(name, bo, name);
    nodes_.push_back(Node{std::move(b), true, false, Clock::now()});
  }

  // Re-derive the topic set: a durable restart recovers each broker's
  // topics from its meta log, and the shard map reproduces the same
  // replica layout the cluster had before. A fresh cluster only sets up
  // the offsets topic here.
  std::map<std::string, std::uint32_t> known;
  for (const Node& node : nodes_) {
    for (const std::string& t : node.broker->topic_names()) {
      known[t] = std::max(known[t], node.broker->partition_count(t));
    }
  }
  known.emplace(kOffsetsTopic, 1);
  for (const auto& [name, partitions] : known) {
    ClusterTopicConfig config;
    config.partitions = std::max(1u, partitions);
    // The offsets topic is replicated on every member: any survivor can
    // serve committed offsets after a failover.
    const std::uint32_t rf =
        name == kOffsetsTopic ? n : options_.replication_factor;
    if (auto s = create_topic_locked(name, config, rf); !s.ok()) {
      PE_LOG_WARN("cluster topic '" << name
                                    << "' setup failed: " << s.to_string());
    }
  }

  controller_ = std::thread(&BrokerCluster::controller_loop, this);
}

BrokerCluster::~BrokerCluster() {
  stop_.store(true, std::memory_order_relaxed);
  if (controller_.joinable()) controller_.join();
}

std::uint32_t BrokerCluster::broker_count() const {
  ReaderLock lock(mutex_);
  return static_cast<std::uint32_t>(nodes_.size());
}

std::shared_ptr<broker::Broker> BrokerCluster::broker(BrokerId id) const {
  ReaderLock lock(mutex_);
  if (id >= nodes_.size()) return nullptr;
  return nodes_[id].broker;
}

BrokerId BrokerCluster::broker_id(const std::string& name) const {
  ReaderLock lock(mutex_);
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    if (nodes_[i].broker->name() == name) return static_cast<BrokerId>(i);
  }
  return kNoBroker;
}

// --- admin -----------------------------------------------------------------

Status BrokerCluster::create_topic(const std::string& name,
                                   ClusterTopicConfig config) {
  if (name.empty()) return Status::InvalidArgument("empty topic name");
  if (config.partitions == 0) {
    return Status::InvalidArgument("topic needs at least one partition");
  }
  WriterLock lock(mutex_);
  if (topics_.count(name) != 0) {
    return Status::AlreadyExists("topic '" + name + "' already exists");
  }
  return create_topic_locked(name, config, options_.replication_factor);
}

Status BrokerCluster::create_topic_locked(const std::string& name,
                                          ClusterTopicConfig config,
                                          std::uint32_t replication_factor) {
  if (topics_.count(name) != 0) return Status::Ok();
  broker::TopicConfig tc;
  tc.partitions = config.partitions;
  tc.retention = config.retention;
  for (Node& node : nodes_) {
    if (!node.alive) continue;  // re-created on restore
    auto s = node.broker->create_topic(name, tc);
    if (!s.ok() && s.code() != StatusCode::kAlreadyExists) {
      PE_LOG_WARN("create '" << name << "' on " << node.broker->name()
                             << ": " << s.to_string());
    }
  }
  TopicState ts;
  ts.config = config;
  ts.replication_factor = replication_factor;
  ts.partitions.reserve(config.partitions);
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    auto ps = std::make_unique<PartitionState>();
    ps->meta.replicas =
        assign_replicas(name, p, static_cast<std::uint32_t>(nodes_.size()),
                        replication_factor);
    ts.partitions.push_back(std::move(ps));
  }
  auto [it, inserted] = topics_.emplace(name, std::move(ts));
  // The initial leader assignment is an election like any other: on a
  // fresh topic every replica is empty and the preferred (first) replica
  // wins; on a durable restart the most-caught-up recovered log wins.
  for (std::uint32_t p = 0; p < config.partitions; ++p) {
    elect_locked(name, p, *it->second.partitions[p]);
  }
  return Status::Ok();
}

bool BrokerCluster::has_topic(const std::string& name) const {
  ReaderLock lock(mutex_);
  return topics_.count(name) != 0;
}

std::uint32_t BrokerCluster::partition_count(const std::string& name) const {
  ReaderLock lock(mutex_);
  auto it = topics_.find(name);
  if (it == topics_.end()) return 0;
  return static_cast<std::uint32_t>(it->second.partitions.size());
}

// --- metadata --------------------------------------------------------------

Result<BrokerCluster::PartitionState*> BrokerCluster::find_partition_locked(
    const std::string& topic, std::uint32_t partition) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status::NotFound("unknown topic '" + topic + "'");
  }
  if (partition >= it->second.partitions.size()) {
    return Status::OutOfRange(
        "partition " + std::to_string(partition) + " out of range for '" +
        topic + "' (" + std::to_string(it->second.partitions.size()) + ")");
  }
  return it->second.partitions[partition].get();
}

Result<PartitionMeta> BrokerCluster::metadata(const std::string& topic,
                                              std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  auto ps = find_partition_locked(topic, partition);
  if (!ps.ok()) return ps.status();
  return ps.value()->meta;
}

Result<BrokerId> BrokerCluster::leader(const std::string& topic,
                                       std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  auto ps = find_partition_locked(topic, partition);
  if (!ps.ok()) return ps.status();
  return ps.value()->meta.leader;
}

// --- data plane ------------------------------------------------------------

Result<std::uint64_t> BrokerCluster::replicated_append_locked(
    const std::string& topic, std::uint32_t partition, PartitionState& ps,
    const PartitionMeta& meta, const std::vector<broker::Record>& records,
    AckPolicy acks, const std::string& client_id, AckWait& wait) {
  Node& leader_node = nodes_[meta.leader];
  // Records carry shared payload views, so these per-replica copies
  // duplicate only the key strings and coordinates, never the payloads.
  // Admission (quota + hot-window cap) is enforced once, at the leader;
  // follower appends go through Broker::replicate, which is
  // admission-exempt — replication must always drain, and the leader's
  // admission bounds the replicas transitively.
  std::vector<broker::Record> leader_copy = records;
  auto appended = leader_node.broker->produce(topic, partition,
                                              std::move(leader_copy),
                                              client_id);
  if (!appended.ok()) return appended.status();
  const std::uint64_t first = appended.value();

  wait.acks = acks;
  wait.target = first + records.size();
  wait.satisfied = 1;  // the leader itself
  const std::size_t quorum = meta.replicas.size() / 2 + 1;
  switch (acks) {
    case AckPolicy::kLeader: wait.required = 1; break;
    case AckPolicy::kQuorum: wait.required = quorum; break;
    case AckPolicy::kAll:
      wait.required = std::max<std::size_t>(meta.isr.size(), 1);
      break;
  }
  wait.replicas = meta.replicas;  // eligibility re-checked per ack poll
  // The leader's just-appended batch, fetched back lazily (hot-window
  // read, shared payload views) the first time a follower needs it:
  // replication ships the records *with the leader's broker timestamps*,
  // so every replica carries the same timestamp per offset and
  // offset_for_timestamp / age-based retention agree across a failover.
  std::vector<broker::ConsumedRecord> stamped;
  for (BrokerId r : meta.replicas) {
    if (r == meta.leader) continue;
    Node& node = nodes_[r];
    if (!node.alive || node.isolated) continue;
    if (ps.pending_truncate.count(r) != 0) continue;
    // Synchronous push to followers that are exactly caught up — the
    // common case. A lagging follower is left to the catch-up pump (and
    // the caller's ack wait) instead of blocking the produce path.
    auto follower_end = node.broker->end_offset(topic, partition);
    if (!follower_end.ok() || follower_end.value() != first) continue;
    if (stamped.empty()) {
      broker::FetchSpec spec;
      spec.offset = first;
      spec.max_records = records.size();
      spec.max_bytes = std::numeric_limits<std::uint64_t>::max();
      auto fetched = leader_node.broker->fetch(topic, partition, spec);
      if (!fetched.ok() || fetched.value().size() != records.size()) {
        break;  // retention raced the read-back; the pump catches up
      }
      stamped = std::move(fetched).value();
    }
    std::vector<broker::ConsumedRecord> copy = stamped;
    if (node.broker->replicate(topic, partition, std::move(copy)).ok()) {
      ++wait.satisfied;
    }
  }
  return first;
}

Status BrokerCluster::await_acks(const std::string& topic,
                                 std::uint32_t partition,
                                 const AckWait& wait) const {
  Stopwatch sw;
  const double budget_ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          options_.ack_timeout)
          .count() /
      Clock::time_scale();
  while (true) {
    std::size_t acked = 0;
    {
      ReaderLock lock(mutex_);
      auto found = find_partition_locked(topic, partition);
      if (!found.ok()) return found.status();
      const PartitionState& ps = *found.value();
      for (BrokerId r : wait.replicas) {
        const Node& node = nodes_[r];
        // Only a replica that can vouch for a valid copy counts: a dead
        // durable broker loses its unsynced tail on recovery, an
        // isolated one is unreachable, and a replica awaiting a
        // divergence-repair truncation matches the target with garbage.
        // Mirrors the eligibility filter on the synchronous push path.
        if (!node.alive || node.isolated) continue;
        if (ps.pending_truncate.count(r) != 0) continue;
        auto end = node.broker->end_offset(topic, partition);
        if (end.ok() && end.value() >= wait.target) ++acked;
      }
    }
    if (acked >= wait.required) return Status::Ok();
    if (sw.elapsed_ms() >= budget_ms) {
      tel::MetricsRegistry::global().counter("cluster.ack_timeouts").add();
      return Status::Timeout(
          "acks=" + std::string(to_string(wait.acks)) + " on " +
          tp_str(topic, partition) + ": " + std::to_string(acked) + "/" +
          std::to_string(wait.required) +
          " replicas caught up within the ack timeout");
    }
    // Scaled poll interval: the wall budget above shrinks with the time
    // scale, so the polling granularity must shrink with it — a fixed
    // 100us wall sleep would eat the whole budget in a handful of polls
    // at high speed-up.
    Clock::sleep_scaled(std::chrono::microseconds(100));
  }
}

Result<std::uint64_t> BrokerCluster::produce(
    BrokerId via, const std::string& topic, std::uint32_t partition,
    std::vector<broker::Record> records) {
  return produce(via, topic, partition, std::move(records),
                 options_.default_acks);
}

Result<std::uint64_t> BrokerCluster::produce(
    BrokerId via, const std::string& topic, std::uint32_t partition,
    std::vector<broker::Record> records, AckPolicy acks,
    const std::string& client_id) {
  if (records.empty()) return Status::InvalidArgument("empty produce batch");
  std::uint64_t first = 0;
  AckWait wait;
  {
    ReaderLock lock(mutex_);
    if (via >= nodes_.size()) {
      return Status::InvalidArgument("unknown broker id " +
                                     std::to_string(via));
    }
    auto found = find_partition_locked(topic, partition);
    if (!found.ok()) return found.status();
    PartitionState& ps = *found.value();
    const PartitionMeta meta = ps.meta;
    if (meta.leader == kNoBroker) {
      return Status::Unavailable("partition " + tp_str(topic, partition) +
                                 " is leaderless (election pending)");
    }
    if (via != meta.leader) {
      tel::MetricsRegistry::global()
          .counter("cluster.not_leader_rejections")
          .add();
      return Status::NotLeader(
          broker_name_for(via) + " is not the leader for " +
          tp_str(topic, partition) + " (leader: " +
          broker_name_for(meta.leader) + ", epoch " +
          std::to_string(meta.epoch) + ")");
    }
    Node& leader_node = nodes_[meta.leader];
    if (!leader_node.alive || leader_node.isolated) {
      return Status::Unavailable(broker_name_for(meta.leader) +
                                 " is unreachable");
    }
    MutexLock append_lock(ps.append_mutex);
    auto appended = replicated_append_locked(topic, partition, ps, meta,
                                             records, acks, client_id, wait);
    if (!appended.ok()) return appended.status();
    first = appended.value();
  }
  tel::MetricsRegistry::global()
      .counter("cluster.records_produced")
      .add(records.size());
  if (wait.satisfied >= wait.required) return first;
  if (auto s = await_acks(topic, partition, wait); !s.ok()) return s;
  return first;
}

std::uint64_t BrokerCluster::high_watermark_locked(
    const std::string& topic, std::uint32_t partition,
    const PartitionState& ps) const {
  // The quorum-th largest end offset across the replica set: everything
  // below it is on a majority of replicas, so any electable candidate set
  // still contains it after a minority of failures. Dead replicas count
  // with their frozen (pre-crash) ends capped by pending truncations —
  // using 0 instead would be safe but would stall the watermark whenever
  // one replica is down.
  std::vector<std::uint64_t> ends;
  ends.reserve(ps.meta.replicas.size());
  for (BrokerId r : ps.meta.replicas) {
    auto end = nodes_[r].broker->end_offset(topic, partition);
    std::uint64_t e = end.ok() ? end.value() : 0;
    auto it = ps.pending_truncate.find(r);
    if (it != ps.pending_truncate.end()) e = std::min(e, it->second);
    ends.push_back(e);
  }
  std::sort(ends.begin(), ends.end(), std::greater<>());
  const std::size_t quorum = ends.size() / 2 + 1;
  return ends[quorum - 1];
}

Result<std::vector<broker::ConsumedRecord>> BrokerCluster::fetch(
    BrokerId via, const std::string& topic, std::uint32_t partition,
    broker::FetchSpec spec) const {
  ReaderLock lock(mutex_);
  if (via >= nodes_.size()) {
    return Status::InvalidArgument("unknown broker id " + std::to_string(via));
  }
  auto found = find_partition_locked(topic, partition);
  if (!found.ok()) return found.status();
  const PartitionState& ps = *found.value();
  const PartitionMeta& meta = ps.meta;
  if (meta.leader == kNoBroker) {
    return Status::Unavailable("partition " + tp_str(topic, partition) +
                               " is leaderless (election pending)");
  }
  if (via != meta.leader) {
    tel::MetricsRegistry::global()
        .counter("cluster.not_leader_rejections")
        .add();
    return Status::NotLeader(broker_name_for(via) + " is not the leader for " +
                             tp_str(topic, partition) + " (leader: " +
                             broker_name_for(meta.leader) + ")");
  }
  const Node& leader_node = nodes_[meta.leader];
  if (!leader_node.alive || leader_node.isolated) {
    return Status::Unavailable(broker_name_for(meta.leader) +
                               " is unreachable");
  }
  const std::uint64_t hw = high_watermark_locked(topic, partition, ps);
  if (spec.offset > hw) {
    return Status::OutOfRange("fetch offset " + std::to_string(spec.offset) +
                              " beyond high watermark " + std::to_string(hw));
  }
  if (spec.offset == hw) return std::vector<broker::ConsumedRecord>{};
  spec.max_wait = Duration::zero();  // never long-poll under the cluster lock
  spec.max_records = static_cast<std::size_t>(
      std::min<std::uint64_t>(spec.max_records, hw - spec.offset));
  auto fetched = leader_node.broker->fetch(topic, partition, spec);
  if (!fetched.ok()) return fetched.status();
  auto records = std::move(fetched).value();
  while (!records.empty() && records.back().offset >= hw) records.pop_back();
  return records;
}

Result<std::uint64_t> BrokerCluster::high_watermark(
    const std::string& topic, std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  auto found = find_partition_locked(topic, partition);
  if (!found.ok()) return found.status();
  return high_watermark_locked(topic, partition, *found.value());
}

Result<std::uint64_t> BrokerCluster::log_start_offset(
    const std::string& topic, std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  auto found = find_partition_locked(topic, partition);
  if (!found.ok()) return found.status();
  const PartitionMeta& meta = found.value()->meta;
  if (meta.leader == kNoBroker) {
    return Status::Unavailable("partition " + tp_str(topic, partition) +
                               " is leaderless (election pending)");
  }
  return nodes_[meta.leader].broker->log_start_offset(topic, partition);
}

// --- consumer groups -------------------------------------------------------

std::shared_ptr<broker::Broker> BrokerCluster::offsets_leader() const {
  ReaderLock lock(mutex_);
  auto found = find_partition_locked(kOffsetsTopic, 0);
  if (!found.ok()) return nullptr;
  const BrokerId leader = found.value()->meta.leader;
  if (leader == kNoBroker) return nullptr;
  const Node& node = nodes_[leader];
  if (!node.alive || node.isolated) return nullptr;
  return node.broker;
}

Result<broker::GroupAssignment> BrokerCluster::join_group(
    const std::string& group, const std::string& member,
    const std::vector<std::string>& topics) {
  auto b = offsets_leader();
  if (!b) {
    return Status::Unavailable("no offsets leader (election pending)");
  }
  return b->coordinator().join(group, member, topics);
}

Status BrokerCluster::leave_group(const std::string& group,
                                  const std::string& member) {
  auto b = offsets_leader();
  if (!b) {
    return Status::Unavailable("no offsets leader (election pending)");
  }
  return b->coordinator().leave(group, member);
}

Status BrokerCluster::heartbeat(const std::string& group,
                                const std::string& member) {
  auto b = offsets_leader();
  if (!b) {
    return Status::Unavailable("no offsets leader (election pending)");
  }
  return b->coordinator().heartbeat(group, member);
}

Result<broker::GroupAssignment> BrokerCluster::group_assignment(
    const std::string& group, const std::string& member) const {
  auto b = offsets_leader();
  if (!b) {
    return Status::Unavailable("no offsets leader (election pending)");
  }
  return b->coordinator().assignment(group, member);
}

std::uint64_t BrokerCluster::group_generation(const std::string& group) const {
  auto b = offsets_leader();
  return b ? b->coordinator().generation(group) : 0;
}

std::uint64_t BrokerCluster::offsets_epoch() const {
  ReaderLock lock(mutex_);
  auto found = find_partition_locked(kOffsetsTopic, 0);
  return found.ok() ? found.value()->meta.epoch : 0;
}

Status BrokerCluster::commit_offset(const std::string& group,
                                    const broker::TopicPartition& tp,
                                    std::uint64_t offset, std::uint64_t epoch) {
  AckWait wait;
  {
    ReaderLock lock(mutex_);
    auto found = find_partition_locked(kOffsetsTopic, 0);
    if (!found.ok()) return found.status();
    PartitionState& ps = *found.value();
    const PartitionMeta meta = ps.meta;
    if (meta.leader == kNoBroker) {
      return Status::Unavailable("offsets partition is leaderless");
    }
    if (epoch != meta.epoch) {
      // Epoch fence: a commit addressed at a deposed offsets leader must
      // not land — the client refreshes the epoch and retries against
      // the new leader's coordinator state.
      tel::MetricsRegistry::global()
          .counter("cluster.stale_epoch_commits")
          .add();
      return Status::NotLeader("offsets epoch " + std::to_string(epoch) +
                               " is stale (current " +
                               std::to_string(meta.epoch) + ")");
    }
    Node& leader_node = nodes_[meta.leader];
    if (!leader_node.alive || leader_node.isolated) {
      return Status::Unavailable(broker_name_for(meta.leader) +
                                 " is unreachable");
    }
    // Append + apply under one lock: the coordinator's committed-offset
    // table stays exactly the fold of the log prefix, so a replay on the
    // next leader reproduces it.
    MutexLock apply_lock(offsets_mutex_);
    MutexLock append_lock(ps.append_mutex);
    broker::Record rec;
    rec.key = group;
    rec.value = broker::Payload(encode_offset_commit(tp, offset));
    auto appended = replicated_append_locked(
        kOffsetsTopic, 0, ps, meta, {std::move(rec)}, AckPolicy::kQuorum,
        /*client_id=*/{}, wait);
    if (!appended.ok()) return appended.status();
    leader_node.broker->coordinator().restore_offset(group, tp, offset);
  }
  if (wait.satisfied >= wait.required) return Status::Ok();
  return await_acks(kOffsetsTopic, 0, wait);
}

std::optional<std::uint64_t> BrokerCluster::committed_offset(
    const std::string& group, const broker::TopicPartition& tp) const {
  auto b = offsets_leader();
  if (!b) return std::nullopt;
  return b->coordinator().committed_offset(group, tp);
}

// --- chaos hooks -----------------------------------------------------------

Status BrokerCluster::kill_broker(BrokerId id) {
  WriterLock lock(mutex_);
  if (id >= nodes_.size()) {
    return Status::NotFound("unknown broker id " + std::to_string(id));
  }
  Node& node = nodes_[id];
  if (!node.alive) return Status::Ok();
  node.alive = false;
  tel::MetricsRegistry::global().counter("cluster.broker_kills").add();
  PE_LOG_INFO("cluster: " << node.broker->name()
                          << " killed; heartbeat now stale");
  return Status::Ok();
}

Status BrokerCluster::kill_broker(const std::string& name) {
  const BrokerId id = broker_id(name);
  if (id == kNoBroker) return Status::NotFound("unknown broker '" + name + "'");
  return kill_broker(id);
}

Status BrokerCluster::restore_broker(BrokerId id, double keep_fraction) {
  WriterLock lock(mutex_);
  if (id >= nodes_.size()) {
    return Status::NotFound("unknown broker id " + std::to_string(id));
  }
  Node& node = nodes_[id];
  if (node.isolated) {
    node.isolated = false;
    node.last_heartbeat = Clock::now();
    PE_LOG_INFO("cluster: " << node.broker->name() << " reconnected");
    return Status::Ok();
  }
  if (node.alive) return Status::Ok();

  // A restored member never resumes leadership it nominally still holds:
  // leadership moves (or the partition goes leaderless) first, which also
  // records the divergence-repair truncation for this member. Without
  // this, a durable member that lost its unsynced tail could come back as
  // "leader" with a shorter log than its followers.
  for (auto& [topic, ts] : topics_) {
    for (std::uint32_t p = 0; p < ts.partitions.size(); ++p) {
      if (ts.partitions[p]->meta.leader == id) {
        elect_locked(topic, p, *ts.partitions[p]);
      }
    }
  }

  if (node.broker->durable()) {
    auto recovered = node.broker->crash_and_recover(keep_fraction);
    if (!recovered.ok()) return recovered.status();
  }
  // Topics created while the member was down (or whose durable intent was
  // lost with the crash) are re-created empty; the pump backfills them.
  for (const auto& [topic, ts] : topics_) {
    if (node.broker->has_topic(topic)) continue;
    broker::TopicConfig tc;
    tc.partitions = ts.config.partitions;
    tc.retention = ts.config.retention;
    if (auto s = node.broker->create_topic(topic, tc); !s.ok()) {
      PE_LOG_WARN("re-create '" << topic << "' on " << node.broker->name()
                                << ": " << s.to_string());
    }
  }
  node.alive = true;
  node.last_heartbeat = Clock::now();
  tel::MetricsRegistry::global().counter("cluster.broker_restores").add();
  PE_LOG_INFO("cluster: " << node.broker->name()
                          << " restored; rejoining as follower");
  return Status::Ok();
}

Status BrokerCluster::restore_broker(const std::string& name,
                                     double keep_fraction) {
  const BrokerId id = broker_id(name);
  if (id == kNoBroker) return Status::NotFound("unknown broker '" + name + "'");
  return restore_broker(id, keep_fraction);
}

Status BrokerCluster::set_broker_isolated(BrokerId id, bool isolated) {
  WriterLock lock(mutex_);
  if (id >= nodes_.size()) {
    return Status::NotFound("unknown broker id " + std::to_string(id));
  }
  Node& node = nodes_[id];
  if (!node.alive) {
    return Status::FailedPrecondition(node.broker->name() + " is dead");
  }
  node.isolated = isolated;
  if (!isolated) node.last_heartbeat = Clock::now();
  PE_LOG_INFO("cluster: " << node.broker->name()
                          << (isolated ? " isolated" : " reconnected"));
  return Status::Ok();
}

Status BrokerCluster::set_broker_isolated(const std::string& name,
                                          bool isolated) {
  const BrokerId id = broker_id(name);
  if (id == kNoBroker) return Status::NotFound("unknown broker '" + name + "'");
  return set_broker_isolated(id, isolated);
}

bool BrokerCluster::broker_alive(BrokerId id) const {
  ReaderLock lock(mutex_);
  return id < nodes_.size() && nodes_[id].alive && !nodes_[id].isolated;
}

bool BrokerCluster::all_partitions_led() const {
  ReaderLock lock(mutex_);
  for (const auto& [topic, ts] : topics_) {
    for (const auto& ps : ts.partitions) {
      const BrokerId l = ps->meta.leader;
      if (l == kNoBroker) return false;
      if (!nodes_[l].alive || nodes_[l].isolated) return false;
    }
  }
  return true;
}

bool BrokerCluster::replicas_converged(const std::string& topic,
                                       std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  auto found = find_partition_locked(topic, partition);
  if (!found.ok()) return false;
  const PartitionState& ps = *found.value();
  std::optional<std::uint64_t> expect;
  for (BrokerId r : ps.meta.replicas) {
    const Node& node = nodes_[r];
    if (!node.alive || node.isolated) continue;
    if (ps.pending_truncate.count(r) != 0) return false;
    auto end = node.broker->end_offset(topic, partition);
    if (!end.ok()) return false;
    if (expect && *expect != end.value()) return false;
    expect = end.value();
  }
  return expect.has_value();
}

// --- controller ------------------------------------------------------------

void BrokerCluster::controller_loop() {
  while (!stop_.load(std::memory_order_relaxed)) {
    tick();
    Clock::sleep_scaled(options_.heartbeat_interval);
  }
}

void BrokerCluster::tick() {
  admin_phase();
  auto changes = replicate_phase();
  if (!changes.empty()) apply_isr_changes(changes);
}

void BrokerCluster::admin_phase() {
  WriterLock lock(mutex_);
  const TimePoint now = Clock::now();
  for (Node& node : nodes_) {
    if (node.alive && !node.isolated) node.last_heartbeat = now;
  }
  const auto session_ns =
      static_cast<double>(std::chrono::duration_cast<std::chrono::nanoseconds>(
                              options_.session_timeout)
                              .count());
  for (auto& [topic, ts] : topics_) {
    for (std::uint32_t p = 0; p < ts.partitions.size(); ++p) {
      PartitionState& ps = *ts.partitions[p];
      // Divergence repair: a replica that came back after losing
      // leadership truncates its un-replicated suffix before the pump
      // lets it back into replication.
      for (auto it = ps.pending_truncate.begin();
           it != ps.pending_truncate.end();) {
        Node& node = nodes_[it->first];
        if (node.alive && !node.isolated &&
            node.broker->truncate_partition(topic, p, it->second).ok()) {
          tel::MetricsRegistry::global().counter("cluster.truncations").add();
          it = ps.pending_truncate.erase(it);
        } else {
          ++it;
        }
      }
      const BrokerId l = ps.meta.leader;
      if (l == kNoBroker) {
        // Leaderless: re-elect as soon as any replica is reachable again.
        for (BrokerId r : ps.meta.replicas) {
          if (nodes_[r].alive && !nodes_[r].isolated) {
            elect_locked(topic, p, ps);
            break;
          }
        }
        continue;
      }
      Node& leader_node = nodes_[l];
      if (leader_node.alive && !leader_node.isolated) continue;
      if (emulated_age_ns(leader_node.last_heartbeat, now) >= session_ns) {
        elect_locked(topic, p, ps);
      }
    }
  }
}

void BrokerCluster::elect_locked(const std::string& topic,
                                 std::uint32_t partition, PartitionState& ps) {
  const BrokerId old_leader = ps.meta.leader;
  // Most-caught-up live replica wins. A replica with a pending truncation
  // competes with its *effective* end (everything below the truncation
  // point is a verified prefix of the last leader's log; the suffix is
  // garbage that will be cut), so a deposed-but-repairable log still
  // beats a genuinely shorter one.
  BrokerId winner = kNoBroker;
  std::uint64_t winner_end = 0;
  for (BrokerId r : ps.meta.replicas) {
    const Node& node = nodes_[r];
    if (!node.alive || node.isolated) continue;
    auto end = node.broker->end_offset(topic, partition);
    if (!end.ok()) continue;
    std::uint64_t effective = end.value();
    auto it = ps.pending_truncate.find(r);
    if (it != ps.pending_truncate.end()) {
      effective = std::min(effective, it->second);
    }
    if (winner == kNoBroker || effective > winner_end) {
      winner = r;
      winner_end = effective;
    }
  }
  if (winner == kNoBroker) {
    if (old_leader != kNoBroker) {
      PE_LOG_WARN("cluster: " << tp_str(topic, partition)
                              << " leaderless (no live replica)");
    }
    ps.meta.leader = kNoBroker;
    ps.meta.isr.clear();
    return;
  }
  if (auto it = ps.pending_truncate.find(winner);
      it != ps.pending_truncate.end()) {
    if (!nodes_[winner].broker->truncate_partition(topic, partition,
                                                   it->second)
             .ok()) {
      return;  // repair failed; retry the election next tick
    }
    tel::MetricsRegistry::global().counter("cluster.truncations").add();
    ps.pending_truncate.erase(it);
  }
  ps.meta.leader = winner;
  ps.meta.epoch += 1;
  ps.meta.isr = {winner};
  // Anything any other replica holds beyond the new leader's end was
  // never quorum-committed; mark it for truncation so logs stay exact
  // prefixes of the leader's.
  for (BrokerId r : ps.meta.replicas) {
    if (r == winner) continue;
    auto end = nodes_[r].broker->end_offset(topic, partition);
    if (end.ok() && end.value() > winner_end) {
      auto [it, inserted] = ps.pending_truncate.try_emplace(r, winner_end);
      if (!inserted) it->second = std::min(it->second, winner_end);
    }
  }
  if (old_leader != kNoBroker && old_leader != winner) {
    failovers_.fetch_add(1, std::memory_order_relaxed);
    tel::MetricsRegistry::global().counter("cluster.failovers").add();
    tel::MetricsRegistry::global()
        .histogram("cluster.failover_detect_ms")
        .record(emulated_age_ns(nodes_[old_leader].last_heartbeat,
                                Clock::now()) /
                1e6);
  }
  if (topic == kOffsetsTopic) replay_offsets_locked(winner);
  PE_LOG_INFO("cluster: " << tp_str(topic, partition) << " leader -> "
                          << broker_name_for(winner) << " (epoch "
                          << ps.meta.epoch << ", end " << winner_end << ")");
}

void BrokerCluster::replay_offsets_locked(BrokerId id) {
  // The committed-offset table of a new offsets leader is exactly the
  // fold of its local __offsets replica (last write per group+partition
  // wins). Soft state — membership, generations — is dropped and re-forms
  // as consumers rejoin.
  broker::Broker& b = *nodes_[id].broker;
  b.coordinator().reset();
  auto start = b.log_start_offset(kOffsetsTopic, 0);
  auto end = b.end_offset(kOffsetsTopic, 0);
  if (!start.ok() || !end.ok()) return;
  std::uint64_t replayed = 0;
  std::uint64_t off = start.value();
  while (off < end.value()) {
    broker::FetchSpec spec;
    spec.offset = off;
    auto batch = b.fetch(kOffsetsTopic, 0, spec);
    if (!batch.ok() || batch.value().empty()) break;
    for (const auto& cr : batch.value()) {
      auto commit = decode_offset_commit(cr.record.value.span());
      if (commit.ok()) {
        b.coordinator().restore_offset(cr.record.key, commit.value().tp,
                                       commit.value().offset);
        ++replayed;
      }
      off = cr.offset + 1;
    }
  }
  tel::MetricsRegistry::global().counter("cluster.offsets_replays").add();
  PE_LOG_INFO("cluster: replayed " << replayed << " offset commits into "
                                   << b.name());
}

std::vector<BrokerCluster::IsrChange> BrokerCluster::replicate_phase() {
  std::vector<IsrChange> changes;
  ReaderLock lock(mutex_);
  for (auto& [topic, ts] : topics_) {
    for (std::uint32_t p = 0; p < ts.partitions.size(); ++p) {
      PartitionState& ps = *ts.partitions[p];
      const PartitionMeta& meta = ps.meta;
      if (meta.leader == kNoBroker) continue;
      Node& leader_node = nodes_[meta.leader];
      if (!leader_node.alive || leader_node.isolated) continue;

      MutexLock append_lock(ps.append_mutex);
      auto leader_end = leader_node.broker->end_offset(topic, p);
      if (!leader_end.ok()) continue;
      const std::uint64_t l_end = leader_end.value();

      std::vector<BrokerId> isr;
      isr.push_back(meta.leader);
      for (BrokerId r : meta.replicas) {
        if (r == meta.leader) continue;
        Node& node = nodes_[r];
        if (!node.alive || node.isolated) continue;
        if (ps.pending_truncate.count(r) != 0) continue;
        auto follower_end = node.broker->end_offset(topic, p);
        if (!follower_end.ok()) continue;
        std::uint64_t f_end = follower_end.value();

        // Catch-up stream: bounded batches out of the leader's log. Cold
        // reads below the leader's hot window come straight out of the
        // mmap'd segment files as shared payload views — segment shipping
        // without a copy.
        std::size_t copied = 0;
        std::uint64_t copied_bytes = 0;
        while (f_end < l_end && copied < options_.replication_batch_records &&
               copied_bytes < options_.replication_batch_bytes) {
          broker::FetchSpec spec;
          spec.offset = f_end;
          spec.max_records = static_cast<std::size_t>(std::min<std::uint64_t>(
              options_.replication_batch_records - copied, l_end - f_end));
          spec.max_bytes = options_.replication_batch_bytes - copied_bytes;
          auto batch = leader_node.broker->fetch(topic, p, spec);
          if (!batch.ok()) {
            // Typically OUT_OF_RANGE: the leader retained past the
            // follower's end (retention gap). The follower stays out of
            // the ISR; snapshot shipping is future work (DESIGN.md §10).
            break;
          }
          if (batch.value().empty()) break;
          for (const auto& cr : batch.value()) {
            copied_bytes += cr.record.wire_size();
          }
          const std::size_t n = batch.value().size();
          // Replicate (not produce): the follower appends the leader's
          // records with the leader's broker timestamps, keeping
          // offset_for_timestamp and age retention consistent per offset
          // across every replica.
          if (!node.broker->replicate(topic, p, std::move(batch).value())
                   .ok()) {
            break;
          }
          f_end += n;
          copied += n;
          tel::MetricsRegistry::global()
              .counter("cluster.replicated_records")
              .add(n);
        }
        if (l_end - f_end <= options_.isr_max_lag_records) isr.push_back(r);
      }
      std::sort(isr.begin(), isr.end());
      if (isr != meta.isr) {
        changes.push_back(IsrChange{topic, p, meta.epoch, std::move(isr)});
      }
    }
  }
  return changes;
}

void BrokerCluster::apply_isr_changes(const std::vector<IsrChange>& changes) {
  WriterLock lock(mutex_);
  for (const auto& change : changes) {
    auto found = find_partition_locked(change.topic, change.partition);
    if (!found.ok()) continue;
    PartitionState& ps = *found.value();
    // An election between the pump pass and here invalidates the
    // observation — the new epoch's ISR starts over from the leader.
    if (ps.meta.epoch != change.epoch) continue;
    ps.meta.isr = change.isr;
  }
}

}  // namespace pe::cluster
