#include "cluster/shard_map.h"

namespace pe::cluster {

std::uint64_t stable_hash(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;  // FNV offset basis
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;  // FNV prime
  }
  return h;
}

std::vector<BrokerId> assign_replicas(const std::string& topic,
                                      std::uint32_t partition,
                                      std::uint32_t brokers,
                                      std::uint32_t replication_factor) {
  std::vector<BrokerId> out;
  if (brokers == 0) return out;
  const std::uint32_t rf =
      std::min(replication_factor == 0 ? 1u : replication_factor, brokers);
  const auto anchor =
      static_cast<std::uint32_t>((stable_hash(topic) + partition) % brokers);
  out.reserve(rf);
  for (std::uint32_t i = 0; i < rf; ++i) {
    out.push_back((anchor + i) % brokers);
  }
  return out;
}

}  // namespace pe::cluster
