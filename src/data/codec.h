// Codec: DataBlock <-> bytes.
//
// Binary layout (little endian):
//   magic "PEB1" | message_id u64 | produced_ns u64 | rows u64 | cols u64 |
//   producer_id (len-prefixed) | has_labels u8 | values raw f64[rows*cols] |
//   labels u8[rows] (if has_labels)
#pragma once

#include "common/serialize.h"
#include "common/status.h"
#include "data/block.h"

namespace pe::data {

class Codec {
 public:
  static Bytes encode(const DataBlock& block);
  static Result<DataBlock> decode(const Bytes& bytes);

  /// Serialized size without encoding (for capacity planning / tests).
  static std::uint64_t encoded_size(const DataBlock& block);
};

}  // namespace pe::data
