// Codec: DataBlock <-> bytes.
//
// Binary layout (little endian):
//   magic "PEB1" | message_id u64 | produced_ns u64 | rows u64 | cols u64 |
//   producer_id (len-prefixed) | has_labels u8 | values raw f64[rows*cols] |
//   labels u8[rows] (if has_labels)
#pragma once

#include <memory>

#include "common/serialize.h"
#include "common/status.h"
#include "data/block.h"

namespace pe::data {

class Codec {
 public:
  static Bytes encode(const DataBlock& block);
  /// Encodes into a caller-provided buffer (appended; callers clear() for
  /// a fresh encode). Lets pooled or reused buffers skip the per-message
  /// allocation that encode() pays.
  static void encode_into(const DataBlock& block, Bytes& out);
  /// Accepts any contiguous byte view — an owned Bytes buffer or a
  /// zero-copy broker::Payload backed by an mmap'd segment.
  static Result<DataBlock> decode(ByteSpan bytes);

  /// Encodes straight into a shared immutable buffer — the form the broker
  /// data plane stores. Producers hand this to Record.value so the encoded
  /// bytes are allocated once and never copied again (append, fetch,
  /// fan-out, and send retries all share the same buffer). The buffer
  /// comes from BufferPool::global() and returns to it when the last
  /// reference drops, so steady-state encoding recycles its allocations.
  static std::shared_ptr<const Bytes> encode_shared(const DataBlock& block);

  /// Serialized size without encoding (for capacity planning / tests).
  static std::uint64_t encoded_size(const DataBlock& block);
};

}  // namespace pe::data
