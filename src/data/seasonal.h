// SeasonalGenerator: periodic sensor-style time series with injected
// anomalies.
//
// The paper motivates Pilot-Edge with IoT sensing workloads subject to
// "seasonal peak loads" and external events. This generator produces a
// multivariate signal where each feature follows its own sinusoid (daily
// cycle analogue) plus Gaussian noise, and anomalies are injected as
// point spikes or temporary level shifts — the classic telemetry anomaly
// types (cf. Aggarwal, "Outlier Analysis"). Ground-truth labels mark the
// anomalous rows, like the cluster generator does.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/block.h"

namespace pe::data {

struct SeasonalConfig {
  std::size_t features = 32;
  /// Samples per full period of the underlying cycle.
  std::size_t period = 288;  // e.g. 5-minute samples over a day
  double amplitude = 5.0;
  double noise_std = 0.5;
  /// Fraction of rows turned into anomalies.
  double anomaly_fraction = 0.03;
  /// Spike magnitude in multiples of the amplitude.
  double spike_scale = 3.0;
  /// A level shift lasts this many samples once triggered.
  std::size_t shift_duration = 16;
  double shift_magnitude = 4.0;
  std::uint64_t seed = 2718;
};

class SeasonalGenerator {
 public:
  explicit SeasonalGenerator(SeasonalConfig config = {});

  /// Next `rows` samples of the stream (time advances across calls).
  DataBlock generate(std::size_t rows);

  const SeasonalConfig& config() const { return config_; }
  /// Total samples emitted so far (the stream clock).
  std::uint64_t position() const { return t_; }

 private:
  SeasonalConfig config_;
  Rng rng_;
  std::vector<double> phase_;      // per-feature phase offset
  std::vector<double> frequency_;  // per-feature cycles per period
  std::uint64_t t_ = 0;
  std::uint64_t shift_remaining_ = 0;
  double shift_offset_ = 0.0;
};

}  // namespace pe::data
