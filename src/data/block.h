// DataBlock: the unit of data flowing through a pipeline.
//
// A block is one "message" in the paper's sense: N points with F features
// (paper: 25..10,000 points x 32 features, 8 bytes per value, i.e. 7 KB to
// 2.6 MB serialized). Blocks carry identity and the produce timestamp so
// telemetry can join spans across components, plus optional ground-truth
// outlier labels from the synthetic generator for accuracy checks.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace pe::data {

struct DataBlock {
  std::uint64_t message_id = 0;
  std::string producer_id;
  std::uint64_t produced_ns = 0;

  std::size_t rows = 0;
  std::size_t cols = 0;
  /// Row-major rows*cols matrix of feature values.
  std::vector<double> values;
  /// Optional ground truth: 1 = injected outlier. Empty or size rows.
  std::vector<std::uint8_t> labels;

  /// Row view (span of cols doubles).
  std::span<const double> row(std::size_t r) const {
    return {values.data() + r * cols, cols};
  }
  std::span<double> row(std::size_t r) {
    return {values.data() + r * cols, cols};
  }

  bool has_labels() const { return labels.size() == rows; }

  /// Payload size of the raw feature values (the paper's "message size").
  std::uint64_t value_bytes() const {
    return static_cast<std::uint64_t>(rows * cols * sizeof(double));
  }

  bool valid() const {
    return values.size() == rows * cols &&
           (labels.empty() || labels.size() == rows);
  }
};

}  // namespace pe::data
