#include "data/codec.h"

#include "common/buffer_pool.h"

namespace pe::data {
namespace {
constexpr char kMagic[4] = {'P', 'E', 'B', '1'};
}

Bytes Codec::encode(const DataBlock& block) {
  Bytes out;
  encode_into(block, out);
  return out;
}

void Codec::encode_into(const DataBlock& block, Bytes& out) {
  out.reserve(out.size() + encoded_size(block));
  ByteWriter w(out);
  for (char c : kMagic) w.put_u8(static_cast<std::uint8_t>(c));
  w.put_u64(block.message_id);
  w.put_u64(block.produced_ns);
  w.put_u64(block.rows);
  w.put_u64(block.cols);
  w.put_string(block.producer_id);
  const bool has_labels = block.has_labels();
  w.put_u8(has_labels ? 1 : 0);
  w.put_f64_array(block.values.data(), block.values.size());
  if (has_labels) {
    for (std::uint8_t l : block.labels) w.put_u8(l);
  }
}

std::shared_ptr<const Bytes> Codec::encode_shared(const DataBlock& block) {
  // Pooled: the allocation behind the payload comes back to the pool once
  // the last holder (producer retry queue, broker log, consumers) lets go.
  auto buf = BufferPool::global().acquire_shared(
      static_cast<std::size_t>(encoded_size(block)));
  encode_into(block, *buf);
  return buf;
}

Result<DataBlock> Codec::decode(ByteSpan bytes) {
  ByteReader r(bytes);
  for (char expected : kMagic) {
    std::uint8_t c = 0;
    if (auto s = r.get_u8(c); !s.ok()) return s;
    if (c != static_cast<std::uint8_t>(expected)) {
      return Status::InvalidArgument("bad magic: not a PEB1 block");
    }
  }
  DataBlock block;
  std::uint64_t rows = 0, cols = 0;
  if (auto s = r.get_u64(block.message_id); !s.ok()) return s;
  if (auto s = r.get_u64(block.produced_ns); !s.ok()) return s;
  if (auto s = r.get_u64(rows); !s.ok()) return s;
  if (auto s = r.get_u64(cols); !s.ok()) return s;
  if (auto s = r.get_string(block.producer_id); !s.ok()) return s;
  std::uint8_t has_labels = 0;
  if (auto s = r.get_u8(has_labels); !s.ok()) return s;

  if (cols != 0 && rows > (1ull << 40) / cols) {
    return Status::InvalidArgument("implausible block dimensions");
  }
  block.rows = rows;
  block.cols = cols;
  block.values.resize(rows * cols);
  if (auto s = r.get_f64_array(block.values.data(), block.values.size());
      !s.ok()) {
    return s;
  }
  if (has_labels != 0) {
    block.labels.resize(rows);
    for (auto& l : block.labels) {
      if (auto s = r.get_u8(l); !s.ok()) return s;
    }
  }
  return block;
}

std::uint64_t Codec::encoded_size(const DataBlock& block) {
  return 4 + 8 * 4 + 4 + block.producer_id.size() + 1 +
         block.values.size() * sizeof(double) +
         (block.has_labels() ? block.rows : 0);
}

}  // namespace pe::data
