#include "data/generator.h"

namespace pe::data {

Generator::Generator(GeneratorConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.features == 0) config_.features = 1;
  if (config_.clusters == 0) config_.clusters = 1;
  centers_.resize(config_.clusters * config_.features);
  for (auto& c : centers_) {
    c = rng_.uniform(-config_.center_range, config_.center_range);
  }
}

DataBlock Generator::generate(std::size_t rows) {
  DataBlock block;
  block.rows = rows;
  block.cols = config_.features;
  block.values.resize(rows * config_.features);
  block.labels.resize(rows);

  if (config_.drift_per_block > 0.0 && generated_blocks_ > 0) {
    for (auto& c : centers_) {
      c += rng_.gaussian(0.0, config_.drift_per_block);
    }
  }
  generated_blocks_ += 1;

  for (std::size_t r = 0; r < rows; ++r) {
    const bool outlier = rng_.bernoulli(config_.outlier_fraction);
    block.labels[r] = outlier ? 1 : 0;
    double* row = block.values.data() + r * config_.features;
    if (outlier) {
      for (std::size_t f = 0; f < config_.features; ++f) {
        row[f] = rng_.uniform(-config_.outlier_range, config_.outlier_range);
      }
    } else {
      const auto k = static_cast<std::size_t>(rng_.uniform_int(
          0, static_cast<std::int64_t>(config_.clusters) - 1));
      const double* center = centers_.data() + k * config_.features;
      for (std::size_t f = 0; f < config_.features; ++f) {
        row[f] = center[f] + rng_.gaussian(0.0, config_.cluster_std);
      }
    }
  }
  return block;
}

}  // namespace pe::data
