// Synthetic data generator (stand-in for the paper's Mini-App generator).
//
// Emits blocks of Gaussian cluster samples with a configurable fraction of
// injected outliers (uniform points far outside the cluster region), the
// standard workload for the paper's three outlier-detection models.
// Deterministic per seed; per-block generation is thread-compatible when
// each producer owns its generator instance.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "data/block.h"

namespace pe::data {

struct GeneratorConfig {
  std::size_t features = 32;   // paper: 32 features per point
  std::size_t clusters = 25;   // matches the k-means cluster count
  double cluster_std = 1.0;
  double center_range = 10.0;  // cluster centers uniform in [-r, r]^d
  double outlier_fraction = 0.05;
  double outlier_range = 40.0;  // outliers uniform in [-r, r]^d
  /// Concept drift: after every generated block, each cluster center
  /// takes a Gaussian step with this standard deviation (0 = stationary).
  /// Models the environment dynamism (seasonal load, sensor aging) that
  /// the paper's runtime adaptation responds to.
  double drift_per_block = 0.0;
  std::uint64_t seed = 42;
};

class Generator {
 public:
  explicit Generator(GeneratorConfig config = {});

  /// Generates one block of `rows` points. message_id/producer_id/
  /// produced_ns are left for the caller (the produce function) to stamp.
  DataBlock generate(std::size_t rows);

  const GeneratorConfig& config() const { return config_; }

  /// The generator's cluster centers, row-major clusters x features
  /// (exposed so tests can verify recovery by k-means).
  const std::vector<double>& centers() const { return centers_; }

 private:
  GeneratorConfig config_;
  Rng rng_;
  std::vector<double> centers_;
  std::uint64_t generated_blocks_ = 0;
};

}  // namespace pe::data
