#include "data/seasonal.h"

#include <cmath>

namespace pe::data {

SeasonalGenerator::SeasonalGenerator(SeasonalConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.features == 0) config_.features = 1;
  if (config_.period == 0) config_.period = 1;
  phase_.resize(config_.features);
  frequency_.resize(config_.features);
  for (std::size_t f = 0; f < config_.features; ++f) {
    phase_[f] = rng_.uniform(0.0, 2.0 * M_PI);
    // Each sensor cycles 1-3 times per period (harmonics).
    frequency_[f] = static_cast<double>(rng_.uniform_int(1, 3));
  }
}

DataBlock SeasonalGenerator::generate(std::size_t rows) {
  DataBlock block;
  block.rows = rows;
  block.cols = config_.features;
  block.values.resize(rows * config_.features);
  block.labels.assign(rows, 0);

  for (std::size_t r = 0; r < rows; ++r) {
    const double cycle = 2.0 * M_PI * static_cast<double>(t_) /
                         static_cast<double>(config_.period);
    t_ += 1;

    bool anomalous = false;
    double spike = 0.0;
    if (shift_remaining_ > 0) {
      shift_remaining_ -= 1;
      anomalous = true;
    } else if (rng_.bernoulli(config_.anomaly_fraction)) {
      anomalous = true;
      if (rng_.bernoulli(0.5)) {
        // Point spike on this sample only.
        spike = config_.spike_scale * config_.amplitude *
                (rng_.bernoulli(0.5) ? 1.0 : -1.0);
      } else {
        // Level shift for the next shift_duration samples.
        shift_offset_ = config_.shift_magnitude * config_.amplitude *
                        (rng_.bernoulli(0.5) ? 1.0 : -1.0);
        shift_remaining_ = config_.shift_duration;
      }
    }
    const double offset = shift_remaining_ > 0 || anomalous
                              ? (spike != 0.0 ? spike : shift_offset_)
                              : 0.0;
    block.labels[r] = anomalous ? 1 : 0;

    double* row = block.values.data() + r * config_.features;
    for (std::size_t f = 0; f < config_.features; ++f) {
      row[f] = config_.amplitude *
                   std::sin(frequency_[f] * cycle + phase_[f]) +
               rng_.gaussian(0.0, config_.noise_std) + offset;
    }
  }
  return block;
}

}  // namespace pe::data
