#include "broker/consumer.h"

#include <algorithm>

#include "common/ids.h"
#include "common/logging.h"

namespace pe::broker {

// Like Kafka's consumer, this class is intentionally NOT thread-safe: one
// consumer instance belongs to one polling thread.

Consumer::Consumer(std::shared_ptr<Broker> broker,
                   std::shared_ptr<net::Fabric> fabric, net::SiteId site,
                   std::string group, ConsumerConfig config)
    : broker_(std::move(broker)),
      fabric_(std::move(fabric)),
      site_(std::move(site)),
      group_(std::move(group)),
      id_(next_consumer_id()),
      config_(config) {}

Consumer::~Consumer() { close(); }

Status Consumer::subscribe(const std::vector<std::string>& topics) {
  auto joined = broker_->coordinator().join(group_, id_, topics);
  if (!joined.ok()) return joined.status();
  subscribed_ = true;
  subscribed_topics_ = topics;
  generation_ = joined.value().generation;
  assignment_ = joined.value().partitions;
  positions_.clear();
  for (const auto& tp : assignment_) {
    positions_[tp] = initial_position(tp);
  }
  stats_.rebalances += 1;
  return Status::Ok();
}

Status Consumer::assign(std::vector<TopicPartition> partitions) {
  for (const auto& tp : partitions) {
    if (broker_->partition_count(tp.topic) == 0) {
      return Status::NotFound("unknown topic '" + tp.topic + "'");
    }
    if (tp.partition >= broker_->partition_count(tp.topic)) {
      return Status::OutOfRange("partition out of range for " + tp.topic);
    }
  }
  subscribed_ = false;
  assignment_ = std::move(partitions);
  positions_.clear();
  for (const auto& tp : assignment_) {
    positions_[tp] = initial_position(tp);
  }
  return Status::Ok();
}

std::uint64_t Consumer::initial_position(const TopicPartition& tp) const {
  if (auto committed = broker_->coordinator().committed_offset(group_, tp)) {
    return *committed;
  }
  if (config_.offset_reset == OffsetReset::kEarliest) {
    auto start = broker_->log_start_offset(tp.topic, tp.partition);
    return start.ok() ? start.value() : 0;
  }
  auto end = broker_->end_offset(tp.topic, tp.partition);
  return end.ok() ? end.value() : 0;
}

void Consumer::maybe_rebalance() {
  if (!subscribed_) return;
  if (broker_->coordinator().generation(group_) == generation_) return;
  auto assigned = broker_->coordinator().assignment(group_, id_);
  if (!assigned.ok()) {
    if (assigned.status().code() == StatusCode::kNotFound) {
      // Session expired and we were evicted: rejoin (Kafka consumers do
      // the same after missing heartbeats).
      PE_LOG_WARN("consumer " << id_ << " evicted from group " << group_
                              << "; rejoining");
      assigned = broker_->coordinator().join(group_, id_,
                                             subscribed_topics_);
    }
    if (!assigned.ok()) return;
  }
  generation_ = assigned.value().generation;
  // Preserve positions for partitions we keep; (re)initialize new ones.
  std::map<TopicPartition, std::uint64_t> new_positions;
  for (const auto& tp : assigned.value().partitions) {
    auto it = positions_.find(tp);
    new_positions[tp] =
        it != positions_.end() ? it->second : initial_position(tp);
  }
  assignment_ = assigned.value().partitions;
  positions_ = std::move(new_positions);
  next_partition_index_ = 0;
  stats_.rebalances += 1;
}

std::vector<ConsumedRecord> Consumer::poll(Duration timeout) {
  return poll(timeout, nullptr);
}

std::vector<ConsumedRecord> Consumer::poll(Duration timeout,
                                           Status* throttle) {
  if (throttle != nullptr) *throttle = Status::Ok();
  // At-least-once auto-commit (Kafka semantics): what the PREVIOUS poll
  // delivered is committed now — the application has had the records in
  // hand since then, so a crash between polls redelivers instead of
  // silently dropping. Runs before the heartbeat/rebalance so positions
  // are persisted before any partition could move away.
  if (config_.auto_commit && uncommitted_delivery_) {
    (void)commit();
    uncommitted_delivery_ = false;
  }
  if (subscribed_) {
    // Liveness signal; also triggers eviction of dead group members.
    (void)broker_->coordinator().heartbeat(group_, id_);
  }
  maybe_rebalance();
  stats_.polls += 1;
  std::vector<ConsumedRecord> out;
  if (assignment_.empty()) {
    if (timeout > Duration::zero()) Clock::sleep_scaled(timeout);
    return out;
  }

  // The poll timeout is an emulated duration (like the sleep_scaled above
  // for unassigned consumers): scale the wall deadline accordingly.
  const auto deadline =
      Clock::now() +
      std::chrono::duration_cast<Duration>(timeout / Clock::time_scale());
  // fetch_max_bytes bounds the whole poll, not each partition: one shared
  // budget decrements as partitions fill it. (Per Kafka fetch semantics a
  // partition always delivers at least one record when the remaining
  // budget is smaller than it, so the response can overshoot by at most
  // one record per partition — but never by a full per-partition budget,
  // which is what handing every partition the full fetch_max_bytes did.)
  std::uint64_t byte_budget = config_.fetch_max_bytes;
  while (true) {
    // One round-robin sweep over assigned partitions, non-blocking.
    for (std::size_t i = 0; i < assignment_.size(); ++i) {
      if (byte_budget == 0) break;
      const auto& tp =
          assignment_[(next_partition_index_ + i) % assignment_.size()];
      if (paused_.count(tp) > 0) continue;
      FetchSpec spec;
      spec.offset = positions_[tp];
      spec.max_records = config_.max_poll_records - out.size();
      spec.max_bytes = byte_budget;
      spec.max_wait = Duration::zero();
      auto fetched = broker_->fetch(tp.topic, tp.partition, spec, id_);
      if (!fetched.ok()) {
        if (fetched.status().code() == StatusCode::kOutOfRange) {
          // Retained away or stale position: jump to a valid offset.
          positions_[tp] = initial_position(tp);
        } else if (fetched.status().retry_after() > Duration::zero()) {
          // Fetch quota in debt: every partition would get the same
          // refusal, so surface the throttle (with the broker's
          // retry-after hint) and end the poll with what we have.
          if (throttle != nullptr) *throttle = fetched.status();
          stats_.throttled_polls += 1;
          if (!out.empty()) uncommitted_delivery_ = true;
          return out;
        } else {
          PE_LOG_WARN("poll fetch failed: " << fetched.status().to_string());
        }
        continue;
      }
      auto& records = fetched.value();
      if (records.empty()) continue;
      std::uint64_t bytes = 0;
      for (const auto& r : records) bytes += r.record.wire_size();
      // Charge the fetch response to the broker->consumer link.
      auto transfer = fabric_->transfer(broker_->site(), site_, bytes);
      if (!transfer.ok()) {
        PE_LOG_WARN("fetch transfer failed: " << transfer.status().to_string());
        continue;
      }
      positions_[tp] = records.back().offset + 1;
      stats_.records_received += records.size();
      stats_.bytes_received += bytes;
      byte_budget -= std::min(byte_budget, bytes);
      // Move the fetched records out: payloads are shared views, so the
      // whole handover is pointer-sized per record.
      out.insert(out.end(), std::make_move_iterator(records.begin()),
                 std::make_move_iterator(records.end()));
      if (out.size() >= config_.max_poll_records) break;
    }
    next_partition_index_ =
        (next_partition_index_ + 1) % assignment_.size();

    if (!out.empty() || Clock::now() >= deadline) break;

    // Nothing available anywhere: long-poll on the first assigned
    // unpaused partition for a slice of the remaining budget, then
    // re-sweep (data may arrive on any partition).
    const auto remaining = deadline - Clock::now();
    const auto slice = std::min<Duration>(
        remaining, std::chrono::duration_cast<Duration>(
                       std::chrono::milliseconds(5)));
    const TopicPartition* wait_tp = nullptr;
    for (std::size_t i = 0; i < assignment_.size(); ++i) {
      const auto& candidate =
          assignment_[(next_partition_index_ + i) % assignment_.size()];
      if (paused_.count(candidate) == 0) {
        wait_tp = &candidate;
        break;
      }
    }
    if (wait_tp == nullptr) {
      // Everything paused: just wait out the slice.
      Clock::sleep_exact(slice);
      continue;
    }
    FetchSpec spec;
    spec.offset = positions_[*wait_tp];
    spec.max_records = 1;
    spec.max_wait = slice;
    (void)broker_->fetch(wait_tp->topic, wait_tp->partition, spec);
    // Result intentionally ignored: the sweep at the top of the loop will
    // re-fetch (and network-charge) anything that arrived.
  }

  if (!out.empty()) uncommitted_delivery_ = true;
  return out;
}

std::vector<TopicPartition> Consumer::assignment() const {
  return assignment_;
}

Result<std::uint64_t> Consumer::position(const TopicPartition& tp) const {
  auto it = positions_.find(tp);
  if (it == positions_.end()) {
    return Status::NotFound("partition not assigned");
  }
  return it->second;
}

Status Consumer::seek(const TopicPartition& tp, std::uint64_t offset) {
  auto it = positions_.find(tp);
  if (it == positions_.end()) {
    return Status::NotFound("partition not assigned");
  }
  it->second = offset;
  return Status::Ok();
}

Status Consumer::seek_to_timestamp(const TopicPartition& tp,
                                   std::uint64_t ts_ns) {
  auto offset = broker_->offset_for_timestamp(tp.topic, tp.partition, ts_ns);
  if (!offset.ok()) return offset.status();
  return seek(tp, offset.value());
}

Status Consumer::pause(const TopicPartition& tp) {
  if (positions_.find(tp) == positions_.end()) {
    return Status::NotFound("partition not assigned");
  }
  paused_.insert(tp);
  return Status::Ok();
}

Status Consumer::resume(const TopicPartition& tp) {
  if (paused_.erase(tp) == 0) {
    return Status::NotFound("partition not paused");
  }
  return Status::Ok();
}

bool Consumer::paused(const TopicPartition& tp) const {
  return paused_.count(tp) > 0;
}

Status Consumer::commit() {
  for (const auto& [tp, pos] : positions_) {
    if (auto s = broker_->coordinator().commit_offset(group_, tp, pos);
        !s.ok()) {
      return s;
    }
  }
  return Status::Ok();
}

void Consumer::close() {
  if (closed_) return;
  closed_ = true;
  // A clean shutdown commits the final delivered positions (Kafka's
  // consumer.close() does the same when auto-commit is enabled).
  if (config_.auto_commit && uncommitted_delivery_) {
    (void)commit();
    uncommitted_delivery_ = false;
  }
  if (subscribed_) {
    (void)broker_->coordinator().leave(group_, id_);
    subscribed_ = false;
  }
}

void Consumer::crash() {
  closed_ = true;
  subscribed_ = false;
  uncommitted_delivery_ = false;
}

ConsumerStats Consumer::stats() const { return stats_; }

}  // namespace pe::broker
