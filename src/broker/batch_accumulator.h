// Producer-side batching accumulator: size + linger coalescing.
//
// A fleet of edge devices emits millions of tiny records; sending each
// one across the WAN as its own transfer (and its own Broker::produce)
// wastes both the per-transfer propagation delay and the broker's batched
// append path (PR 7 made Broker::produce -> LogDir::append_batch pay
// batch-level cost — but only for batches that arrive as batches).
//
// The accumulator buffers records per (topic, partition) and hands a
// whole batch to its flush sink when any of three triggers fires:
//   - size:  the pending batch reached `batch_max_bytes`;
//   - time:  the batch has lingered `linger` (emulated) since its first
//            record — a background flusher thread watches deadlines;
//   - close: flush()/close() force out everything pending.
//
// The sink (Producer::send_batch, ClusterProducer::send_batch) may be
// called from the caller's thread (size trigger) and from the flusher
// thread (linger trigger) concurrently — sinks must be thread-safe. Sink
// failures are counted (flush_errors, records_dropped) and kept in
// last_error(); a size-triggered flush also returns the error to the
// add() caller synchronously. Callers that need zero-loss semantics put
// a retry loop in the sink (see scenario::FleetGenerator) — the
// accumulator itself does not retry.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "broker/record.h"

namespace pe::broker {

struct BatchConfig {
  /// How long a batch may wait (emulated time) for more records before it
  /// is flushed. Zero disables lingering: every add() flushes
  /// immediately (no flusher thread is started).
  Duration linger = std::chrono::milliseconds(5);
  /// A pending batch reaching this many wire bytes is flushed at once.
  std::uint64_t batch_max_bytes = 256 * 1024;
};

struct BatchAccumulatorStats {
  std::uint64_t records_enqueued = 0;
  std::uint64_t records_flushed = 0;
  std::uint64_t batches_flushed = 0;
  std::uint64_t flushes_on_size = 0;
  std::uint64_t flushes_on_time = 0;
  std::uint64_t flushes_on_close = 0;
  std::uint64_t flushes_manual = 0;
  std::uint64_t flush_errors = 0;
  /// Records handed to a sink call that failed (the sink owns retries).
  std::uint64_t records_dropped = 0;
};

class BatchAccumulator {
 public:
  /// The sink a due batch is handed to.
  using FlushFn = std::function<Status(
      const std::string& topic, std::uint32_t partition,
      std::vector<Record> records)>;

  BatchAccumulator(BatchConfig config, FlushFn flush);
  ~BatchAccumulator();

  BatchAccumulator(const BatchAccumulator&) = delete;
  BatchAccumulator& operator=(const BatchAccumulator&) = delete;

  /// Buffers one record. Returns the sink's status when this add tripped
  /// the size (or linger==0) trigger, OK otherwise. FAILED_PRECONDITION
  /// after close().
  Status add(const std::string& topic, std::uint32_t partition,
             Record record);

  /// Flushes everything pending now (manual trigger). Returns the first
  /// sink error, if any.
  Status flush();

  /// Flushes everything pending, stops the flusher thread, and rejects
  /// further adds. Idempotent.
  Status close();

  BatchAccumulatorStats stats() const;
  /// Most recent sink failure (OK when none) — how a linger-triggered
  /// flush error surfaces to a caller that never sees the sink's return.
  Status last_error() const;

  const BatchConfig& config() const { return config_; }

 private:
  enum class Trigger { kSize, kTime, kClose, kManual };
  struct Pending {
    std::vector<Record> records;
    std::uint64_t bytes = 0;
    TimePoint deadline;  // wall deadline (linger scaled at arm time)
  };
  using Key = std::pair<std::string, std::uint32_t>;
  struct Due {
    Key key;
    std::vector<Record> records;
  };

  void flusher_loop();
  /// Runs the sink outside the lock and books the outcome.
  Status flush_batch(const Key& key, std::vector<Record> records,
                     Trigger trigger);
  std::vector<Due> take_all_locked() PE_REQUIRES(mutex_);

  const BatchConfig config_;
  const FlushFn flush_;
  // Client-side lock, held only around the pending map — never across the
  // sink call (which takes broker/cluster locks and network time).
  mutable Mutex mutex_{"broker.batch_accumulator"};
  CondVar wake_;
  std::map<Key, Pending> pending_ PE_GUARDED_BY(mutex_);
  BatchAccumulatorStats stats_ PE_GUARDED_BY(mutex_);
  Status last_error_ PE_GUARDED_BY(mutex_);
  /// Bumped whenever a new batch arms a (possibly earlier) deadline, so
  /// the flusher re-plans instead of sleeping past it.
  std::uint64_t arm_epoch_ PE_GUARDED_BY(mutex_) = 0;
  bool stop_ PE_GUARDED_BY(mutex_) = false;
  bool closed_ PE_GUARDED_BY(mutex_) = false;
  std::thread flusher_;
};

}  // namespace pe::broker
