// Consumer-group coordination: membership, partition assignment,
// generations, and committed offsets.
//
// Follows Kafka's group model with a range assignor: when membership
// changes, the generation is bumped and partitions of all subscribed
// topics are re-assigned contiguously across members (sorted by member
// id). Members learn about rebalances by observing the generation.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"

namespace pe::broker {

struct TopicPartition {
  std::string topic;
  std::uint32_t partition = 0;

  auto operator<=>(const TopicPartition&) const = default;
};

/// A member's current view of the group after (re)joining.
struct GroupAssignment {
  std::uint64_t generation = 0;
  std::vector<TopicPartition> partitions;
};

class GroupCoordinator {
 public:
  /// `partition_count_fn` resolves a topic name to its partition count
  /// (0 = unknown topic). It is only ever invoked with the coordinator
  /// lock released: the broker-backed callback takes the broker registry
  /// lock, and holding the coordinator lock across it would invert the
  /// Broker -> Coordinator order.
  using PartitionCountFn = std::function<std::uint32_t(const std::string&)>;

  explicit GroupCoordinator(PartitionCountFn partition_count_fn);

  /// Adds (or re-subscribes) a member; triggers a rebalance. Unknown topics
  /// fail with NOT_FOUND and leave the group unchanged.
  Result<GroupAssignment> join(const std::string& group,
                               const std::string& member_id,
                               const std::vector<std::string>& topics);

  /// Removes a member; triggers a rebalance for the remaining members.
  Status leave(const std::string& group, const std::string& member_id);

  /// Liveness: members must heartbeat within the session timeout or they
  /// are evicted at the next group operation (0 = liveness disabled,
  /// the default). Consumers heartbeat automatically on every poll.
  void set_session_timeout(Duration timeout);
  Status heartbeat(const std::string& group, const std::string& member_id);

  /// Current assignment for a member (NOT_FOUND if not a member).
  Result<GroupAssignment> assignment(const std::string& group,
                                     const std::string& member_id) const;

  /// Current generation of a group (0 if the group does not exist).
  std::uint64_t generation(const std::string& group) const;

  std::vector<std::string> members(const std::string& group) const;

  /// Commits a consumed position (the *next* offset to read).
  Status commit_offset(const std::string& group, const TopicPartition& tp,
                       std::uint64_t offset);

  /// Last committed position, or nullopt if never committed.
  std::optional<std::uint64_t> committed_offset(const std::string& group,
                                                const TopicPartition& tp) const;

  /// Observes every successful commit_offset. Invoked with the
  /// coordinator lock released so the listener may take lower-ranked
  /// locks (the durable broker appends the commit to its offsets log).
  using CommitListener = std::function<void(
      const std::string& group, const TopicPartition& tp,
      std::uint64_t offset)>;
  void set_commit_listener(CommitListener listener);

  /// Replays a committed position from durable storage: same effect as
  /// commit_offset but never notifies the listener (it would re-append
  /// what is being replayed).
  void restore_offset(const std::string& group, const TopicPartition& tp,
                      std::uint64_t offset);

  /// Drops all group state (crash simulation; durable state is replayed
  /// back via restore_offset). The commit listener survives.
  void reset();

 private:
  struct Member {
    std::vector<std::string> topics;
    TimePoint last_heartbeat;
  };
  struct Group {
    std::uint64_t generation = 0;
    std::map<std::string, Member> members;
    // member id -> assigned partitions
    std::map<std::string, std::vector<TopicPartition>> assignments;
    std::map<TopicPartition, std::uint64_t> committed;
  };

  void rebalance_locked(Group& group) PE_REQUIRES(mutex_);
  /// Drops members whose heartbeat expired; rebalances if any were lost.
  void evict_expired_locked(Group& group) PE_REQUIRES(mutex_);

  PartitionCountFn partition_count_fn_;
  // Leaf of the broker lock domain: consumers call into the coordinator
  // while the broker may hold its own locks, never the reverse.
  mutable Mutex mutex_{"broker.coordinator", lock_rank(kLockDomainBroker, 3)};
  Duration session_timeout_ PE_GUARDED_BY(mutex_) = Duration::zero();
  CommitListener commit_listener_ PE_GUARDED_BY(mutex_);
  std::map<std::string, Group> groups_ PE_GUARDED_BY(mutex_);
  // Partition counts resolved at join time, outside mutex_, so eviction-
  // triggered rebalances (heartbeat/leave) never invoke the callback
  // under the lock. Counts are fixed at topic creation, so the cache can
  // only go stale for deleted topics — which the range assignor would
  // have skipped anyway once their count reads 0.
  std::map<std::string, std::uint32_t> topic_counts_ PE_GUARDED_BY(mutex_);
};

}  // namespace pe::broker
