// Append-only partition log: the core broker data structure.
//
// Semantics follow Kafka's partition model:
//  - append assigns dense, monotonically increasing offsets;
//  - fetch(offset) returns records at >= offset, bounded by count/bytes,
//    optionally long-polling until data arrives;
//  - retention trims the head; log_start_offset() moves forward, offsets
//    are never reused.
//
// Two storage tiers:
//  - in-memory deque: the hot tail, always present, serves most fetches;
//  - optional durable tier (storage::LogDir): every append also lands in
//    a CRC-framed segmented commit log on disk. Fetches below the hot
//    window are served from mmap'd segments as zero-copy payload views,
//    and the log survives a broker crash — reopening the same directory
//    resumes the offset sequence after truncating any torn tail.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "broker/record.h"
#include "storage/log_dir.h"
#include "storage/storage_config.h"

namespace pe::broker {

/// Retention policy for a partition log. Zero means unlimited.
struct RetentionPolicy {
  std::uint64_t max_records = 0;
  std::uint64_t max_bytes = 0;
  /// Records older than this (by broker timestamp) are trimmed on append.
  Duration max_age = Duration::zero();
  /// Cap on the in-memory hot window of a *durable* partition: the deque
  /// is trimmed down to this many bytes without touching the durable tier
  /// (trimmed records stay on disk and are served by the cold fetch
  /// path). Bounds broker memory independently of how much the log
  /// retains. Ignored for in-memory logs — trimming those would lose
  /// data, which is retention's job, not a cache bound's.
  std::uint64_t hot_max_bytes = 0;
};

/// Bounds for a fetch call.
struct FetchSpec {
  std::uint64_t offset = 0;
  std::size_t max_records = 512;
  std::uint64_t max_bytes = 8ull << 20;  // 8 MiB
  Duration max_wait = Duration::zero();  // 0 => non-blocking
};

class PartitionLog {
 public:
  explicit PartitionLog(RetentionPolicy retention = {});
  ~PartitionLog();

  /// Durable partition log: `durable_dir` is recovered (or created) as a
  /// storage::LogDir and every append is written through to it. The
  /// in-memory deque resumes at the recovered end offset; records already
  /// on disk are served via the cold path.
  PartitionLog(RetentionPolicy retention, std::string durable_dir,
               storage::StorageConfig storage = {});

  bool durable() const { return log_dir_ != nullptr; }
  /// What recovery found when the durable tier was opened (zeros for
  /// in-memory logs and fresh directories).
  const storage::RecoveryReport& recovery_report() const {
    return recovery_report_;
  }
  /// The durable tier (nullptr for in-memory logs). For tests/tools.
  storage::LogDir* log_dir() { return log_dir_.get(); }

  /// Forces the durable tier to fsync (no-op for in-memory logs). Offsets
  /// below the returned value are power-loss durable.
  Status sync();

  /// Power-loss simulation on the durable tier: the fsynced prefix
  /// survives, `keep_fraction` of unsynced tail bytes survive (possibly
  /// mid-frame), and the log stops accepting durable writes. Reopen the
  /// directory (new PartitionLog) to recover. No-op for in-memory logs.
  void simulate_power_loss(double keep_fraction);

  /// Discards every record with offset >= `offset` from both tiers and
  /// resumes the offset sequence at `offset` (replication divergence
  /// repair on a deposed leader). Offsets below the log start are
  /// OUT_OF_RANGE; at/past the end is a no-op.
  Status truncate_suffix(std::uint64_t offset);

  /// Appends a record, stamping the broker timestamp; returns its offset.
  /// A failed durable append FAILS the call (transient UNAVAILABLE) —
  /// the record is not acked, not added to the hot window, and
  /// next_offset_ does not advance past the durable end. The
  /// "storage.append_errors" counter tracks these.
  Result<std::uint64_t> append(Record record);

  /// Appends a batch in one durable-tier call (one lock acquisition, one
  /// batched write, at most one fsync); returns the offset of the first
  /// record. On a durable failure the call fails like append() — any
  /// durably-appended prefix of the batch stays in the log (so the hot
  /// window and the disk agree record for record), but no record of the
  /// batch is acked to the caller.
  Result<std::uint64_t> append_batch(std::vector<Record> records);

  /// Replication append: each record keeps the broker timestamp it was
  /// stamped with on the partition leader instead of being re-stamped
  /// here, so a given offset carries one timestamp cluster-wide (the
  /// records must be the leader's log in offset order — timestamps stay
  /// append-monotonic). Returns the offset of the first record. Durable
  /// failures propagate exactly like append_batch(), so a replica's
  /// end_offset() (which quorum acks poll) never runs ahead of what its
  /// disk accepted.
  Result<std::uint64_t> append_replicated(std::vector<ConsumedRecord> records);

  /// Returns records with offset >= spec.offset. Blocks up to spec.max_wait
  /// if the requested offset is at the end of the log. Fetching below
  /// log_start_offset fails with OUT_OF_RANGE (the data was retained away);
  /// fetching above end_offset fails with OUT_OF_RANGE too.
  Result<std::vector<ConsumedRecord>> fetch(const FetchSpec& spec) const;

  /// First offset still held (advances under retention).
  std::uint64_t log_start_offset() const;

  /// Offset of the first record with broker timestamp >= ts_ns, or
  /// end_offset() when everything retained is older (Kafka's
  /// offsetsForTimes semantics; timestamps are append-monotonic).
  std::uint64_t offset_for_timestamp(std::uint64_t ts_ns) const;

  /// Offset that the *next* appended record will receive.
  std::uint64_t end_offset() const;

  std::uint64_t record_count() const;
  std::uint64_t byte_size() const;

  /// Bytes currently held by the in-memory hot window (<= byte_size();
  /// for a durable log byte_size() reports the on-disk tier instead).
  std::uint64_t hot_window_bytes() const;

  /// Runs the retention + hot-window trim pass outside an append. The
  /// broker calls this when a produce hits the hot-window cap: trimming
  /// first may free enough memory to admit the batch without waiting for
  /// the next append on some other partition to trim it incidentally.
  void enforce_retention();

  /// Mirrors every hot-window byte-count change into `counter` (the
  /// broker's admission controller aggregates one counter across all
  /// partitions). Must be installed before the log serves traffic; the
  /// current hot bytes are transferred into the counter on installation
  /// and removed on destruction.
  void set_hot_bytes_counter(std::shared_ptr<std::atomic<std::int64_t>> c);

 private:
  struct Entry {
    std::uint64_t offset;
    std::uint64_t broker_timestamp_ns;
    Record record;
  };

  void enforce_retention_locked() PE_REQUIRES(mutex_);
  /// Single mutation point for bytes_: keeps the shared hot-bytes counter
  /// exactly in sync with the deque.
  void add_hot_bytes_locked(std::int64_t delta) PE_REQUIRES(mutex_);

  const RetentionPolicy retention_;
  // Level 2 in the broker domain: legally acquired under the Broker
  // registry lock (level 1), never the other way around. The durable
  // tier's own mutex ranks below this one (level 4), so writing through
  // while holding this lock is in order.
  mutable Mutex mutex_{"broker.partition_log",
                       lock_rank(kLockDomainBroker, 2)};
  mutable CondVar data_available_;
  std::deque<Entry> entries_ PE_GUARDED_BY(mutex_);
  std::uint64_t next_offset_ PE_GUARDED_BY(mutex_) = 0;
  std::uint64_t bytes_ PE_GUARDED_BY(mutex_) = 0;
  std::shared_ptr<std::atomic<std::int64_t>> hot_counter_
      PE_GUARDED_BY(mutex_);
  // LogDir is internally synchronized; the pointer itself is immutable
  // after construction.
  std::unique_ptr<storage::LogDir> log_dir_;
  storage::RecoveryReport recovery_report_;
};

}  // namespace pe::broker
