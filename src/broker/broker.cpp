#include "broker/broker.h"

namespace pe::broker {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
}  // namespace

Broker::Broker(net::SiteId site, std::string name)
    : site_(std::move(site)),
      name_(std::move(name)),
      coordinator_([this](const std::string& topic) {
        return partition_count(topic);
      }) {}

Status Broker::create_topic(const std::string& name, TopicConfig config) {
  if (name.empty()) return Status::InvalidArgument("empty topic name");
  if (config.partitions == 0) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  WriterLock lock(mutex_);
  if (topics_.count(name) > 0) {
    return Status::AlreadyExists("topic '" + name + "' exists");
  }
  topics_.emplace(name, std::make_shared<Topic>(name, config));
  return Status::Ok();
}

Status Broker::delete_topic(const std::string& name) {
  WriterLock lock(mutex_);
  if (topics_.erase(name) == 0) {
    return Status::NotFound("topic '" + name + "' not found");
  }
  return Status::Ok();
}

bool Broker::has_topic(const std::string& name) const {
  ReaderLock lock(mutex_);
  return topics_.count(name) > 0;
}

std::uint32_t Broker::partition_count(const std::string& name) const {
  auto topic = find_topic(name);
  return topic ? topic->partition_count() : 0;
}

std::vector<std::string> Broker::topic_names() const {
  ReaderLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(topics_.size());
  for (const auto& [n, _] : topics_) out.push_back(n);
  return out;
}

std::shared_ptr<Topic> Broker::find_topic(const std::string& name) const {
  ReaderLock lock(mutex_);
  auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second;
}

Result<std::uint64_t> Broker::produce(const std::string& topic,
                                      std::uint32_t partition,
                                      std::vector<Record> records) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition_offline(topic, partition)) {
    return Status::Unavailable("partition " + topic + "/" +
                               std::to_string(partition) + " offline");
  }
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  std::uint64_t bytes = 0;
  for (const auto& r : records) bytes += r.wire_size();
  const auto count = records.size();
  const std::uint64_t first = log->append_batch(std::move(records));
  stats_.produce_requests.fetch_add(1, kRelaxed);
  stats_.records_in.fetch_add(count, kRelaxed);
  stats_.bytes_in.fetch_add(bytes, kRelaxed);
  return first;
}

Result<std::uint32_t> Broker::select_partition(const std::string& topic,
                                               const Record& record) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  return t->select_partition(record);
}

Result<std::vector<ConsumedRecord>> Broker::fetch(const std::string& topic,
                                                  std::uint32_t partition,
                                                  const FetchSpec& spec) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition_offline(topic, partition)) {
    return Status::Unavailable("partition " + topic + "/" +
                               std::to_string(partition) + " offline");
  }
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  auto result = log->fetch(spec);
  if (!result.ok()) return result.status();
  auto records = std::move(result).value();
  std::uint64_t bytes = 0;
  for (auto& r : records) {
    r.topic = topic;
    r.partition = partition;
    bytes += r.record.wire_size();
  }
  stats_.fetch_requests.fetch_add(1, kRelaxed);
  stats_.records_out.fetch_add(records.size(), kRelaxed);
  stats_.bytes_out.fetch_add(bytes, kRelaxed);
  return records;
}

Result<std::uint64_t> Broker::end_offset(const std::string& topic,
                                         std::uint32_t partition) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->end_offset();
}

Result<std::uint64_t> Broker::log_start_offset(const std::string& topic,
                                               std::uint32_t partition) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->log_start_offset();
}

Result<std::uint64_t> Broker::offset_for_timestamp(
    const std::string& topic, std::uint32_t partition,
    std::uint64_t ts_ns) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->offset_for_timestamp(ts_ns);
}

Status Broker::dead_letter(const std::string& origin_topic,
                           std::uint32_t origin_partition, Record record,
                           const std::string& reason) {
  if (!has_topic(origin_topic)) {
    return Status::NotFound("topic '" + origin_topic + "' not found");
  }
  const std::string dlq = dead_letter_topic_name(origin_topic);
  TopicConfig config;
  config.partitions = 1;
  if (auto s = create_topic(dlq, config);
      !s.ok() && s.code() != StatusCode::kAlreadyExists) {
    return s;
  }
  // The payload rides along as a shared view; only the key is rewritten.
  record.key = origin_topic + "/" + std::to_string(origin_partition) + "/" +
               reason + "/" + record.key;
  std::vector<Record> batch;
  batch.push_back(std::move(record));
  auto produced = produce(dlq, 0, std::move(batch));
  if (!produced.ok()) return produced.status();
  stats_.records_dead_lettered.fetch_add(1, kRelaxed);
  return Status::Ok();
}

Status Broker::set_partition_offline(const std::string& topic,
                                     std::uint32_t partition, bool offline) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition >= t->partition_count()) {
    return Status::OutOfRange("partition out of range");
  }
  WriterLock lock(mutex_);
  if (offline) {
    offline_partitions_.insert({topic, partition});
  } else {
    offline_partitions_.erase({topic, partition});
  }
  return Status::Ok();
}

bool Broker::partition_offline(const std::string& topic,
                               std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  if (offline_partitions_.empty()) return false;
  return offline_partitions_.count({topic, partition}) > 0;
}

BrokerStats Broker::stats() const {
  BrokerStats out;
  out.records_in = stats_.records_in.load(kRelaxed);
  out.bytes_in = stats_.bytes_in.load(kRelaxed);
  out.records_out = stats_.records_out.load(kRelaxed);
  out.bytes_out = stats_.bytes_out.load(kRelaxed);
  out.produce_requests = stats_.produce_requests.load(kRelaxed);
  out.fetch_requests = stats_.fetch_requests.load(kRelaxed);
  out.records_dead_lettered = stats_.records_dead_lettered.load(kRelaxed);
  return out;
}

std::uint64_t Broker::retained_bytes() const {
  ReaderLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [_, t] : topics_) total += t->total_bytes();
  return total;
}

}  // namespace pe::broker
