#include "broker/broker.h"

#include <filesystem>
#include <limits>

#include "common/logging.h"
#include "common/serialize.h"
#include "telemetry/metrics.h"

namespace pe::broker {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

// --- durable record formats ---
// Topic intent (key = topic name):
//   u8 op (1 create / 2 delete) | u32 partitions | u64 max_records |
//   u64 max_bytes | u64 max_age_ns | u8 partitioner | u64 hot_max_bytes
// The trailing hot_max_bytes is absent in logs written before the
// admission-control change; the decoder treats a short read there as 0.
// Committed offset (key = group id):
//   string topic | u32 partition | u64 offset

Bytes encode_topic_intent(bool create, const TopicConfig& config) {
  Bytes out;
  ByteWriter w(out);
  w.put_u8(create ? 1 : 2);
  w.put_u32(config.partitions);
  w.put_u64(config.retention.max_records);
  w.put_u64(config.retention.max_bytes);
  w.put_u64(static_cast<std::uint64_t>(config.retention.max_age.count()));
  w.put_u8(static_cast<std::uint8_t>(config.partitioner));
  w.put_u64(config.retention.hot_max_bytes);
  return out;
}

bool decode_topic_intent(ByteSpan bytes, bool* create, TopicConfig* config) {
  ByteReader r(bytes);
  std::uint8_t op = 0, partitioner = 0;
  std::uint64_t max_age_ns = 0;
  if (!r.get_u8(op).ok() || !r.get_u32(config->partitions).ok() ||
      !r.get_u64(config->retention.max_records).ok() ||
      !r.get_u64(config->retention.max_bytes).ok() ||
      !r.get_u64(max_age_ns).ok() || !r.get_u8(partitioner).ok()) {
    return false;
  }
  if (!r.get_u64(config->retention.hot_max_bytes).ok()) {
    config->retention.hot_max_bytes = 0;  // pre-admission-control intent
  }
  config->retention.max_age = Duration(max_age_ns);
  config->partitioner = static_cast<PartitionerKind>(partitioner);
  *create = op == 1;
  return true;
}

Bytes encode_committed_offset(const TopicPartition& tp,
                              std::uint64_t offset) {
  Bytes out;
  ByteWriter w(out);
  w.put_string(tp.topic);
  w.put_u32(tp.partition);
  w.put_u64(offset);
  return out;
}

bool decode_committed_offset(ByteSpan bytes, TopicPartition* tp,
                             std::uint64_t* offset) {
  ByteReader r(bytes);
  return r.get_string(tp->topic).ok() && r.get_u32(tp->partition).ok() &&
         r.get_u64(*offset).ok();
}

void merge_report(storage::RecoveryReport* into,
                  const storage::RecoveryReport& from) {
  into->segments_scanned += from.segments_scanned;
  into->records_recovered += from.records_recovered;
  into->bytes_recovered += from.bytes_recovered;
  into->torn_bytes_truncated += from.torn_bytes_truncated;
  into->segments_deleted += from.segments_deleted;
  into->elapsed += from.elapsed;
}

/// Walks every record currently retained in a LogDir, in offset order.
template <typename Fn>
Status replay_log(storage::LogDir& log, Fn&& fn) {
  std::uint64_t offset = log.start_offset();
  const std::uint64_t end = log.end_offset();
  while (offset < end) {
    auto batch = log.fetch(offset, 512,
                           std::numeric_limits<std::uint64_t>::max());
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (const auto& r : batch.value()) fn(r);
    offset = batch.value().back().offset + 1;
  }
  return Status::Ok();
}

}  // namespace

Broker::Broker(net::SiteId site, std::string name)
    : Broker(std::move(site), BrokerOptions{}, std::move(name)) {}

Broker::Broker(net::SiteId site, BrokerOptions options, std::string name)
    : site_(std::move(site)),
      name_(std::move(name)),
      options_(std::move(options)),
      coordinator_([this](const std::string& topic) {
        return partition_count(topic);
      }),
      admission_(options_.admission) {
  if (!durable()) return;
  {
    WriterLock lock(mutex_);
    storage::RecoveryReport report;
    if (auto s = recover_locked(&report); !s.ok()) {
      PE_LOG_ERROR("broker durable recovery failed (continuing without "
                   "durability): "
                   << s.to_string());
    }
  }
  coordinator_.set_commit_listener(
      [this](const std::string& group, const TopicPartition& tp,
             std::uint64_t offset) { persist_commit(group, tp, offset); });
}

Status Broker::recover_locked(storage::RecoveryReport* report) {
  namespace fs = std::filesystem;
  // Control-plane logs are always fully synced: losing a topic intent or
  // a committed offset would violate the durability contract outright.
  storage::StorageConfig control_cfg = options_.storage;
  control_cfg.flush_policy = storage::FlushPolicy::kEverySync;

  storage::RecoveryReport sub;
  auto meta = storage::LogDir::open(options_.durable_dir + "/__meta",
                                    control_cfg, &sub);
  if (!meta.ok()) return meta.status();
  meta_log_ = std::move(meta).value();
  merge_report(report, sub);

  // Replay topic intents, last op per topic wins. A topic deleted at
  // runtime already had its directory removed; removing again here makes
  // a crash between tombstone append and directory removal converge.
  struct Intent {
    bool exists = false;
    TopicConfig config;
  };
  std::map<std::string, Intent> intents;
  auto replayed = replay_log(*meta_log_, [&](const ConsumedRecord& r) {
    Intent intent;
    if (!decode_topic_intent(r.record.value, &intent.exists,
                             &intent.config)) {
      PE_LOG_WARN("skipping malformed topic intent at offset " << r.offset);
      return;
    }
    intents[r.record.key] = intent;
  });
  if (!replayed.ok()) return replayed;

  for (const auto& [tname, intent] : intents) {
    if (intent.exists) {
      auto topic = std::make_shared<Topic>(tname, intent.config,
                                           topic_dir(tname),
                                           options_.storage);
      topic->set_hot_bytes_counter(admission_.hot_bytes_counter());
      for (std::uint32_t p = 0; p < topic->partition_count(); ++p) {
        merge_report(report, topic->partition(p)->recovery_report());
      }
      topics_.emplace(tname, std::move(topic));
    } else {
      std::error_code ec;
      fs::remove_all(topic_dir(tname), ec);
    }
  }

  sub = {};
  auto offsets = storage::LogDir::open(options_.durable_dir + "/__offsets",
                                       control_cfg, &sub);
  if (!offsets.ok()) return offsets.status();
  offsets_log_ = std::move(offsets).value();
  merge_report(report, sub);

  return replay_log(*offsets_log_, [&](const ConsumedRecord& r) {
    TopicPartition tp;
    std::uint64_t offset = 0;
    if (!decode_committed_offset(r.record.value, &tp, &offset)) {
      PE_LOG_WARN("skipping malformed committed offset at offset "
                  << r.offset);
      return;
    }
    coordinator_.restore_offset(r.record.key, tp, offset);
  });
}

Status Broker::persist_topic_intent_locked(const std::string& name,
                                           bool create,
                                           const TopicConfig& config) {
  if (!meta_log_) return Status::Ok();
  Record record;
  record.key = name;
  record.value = encode_topic_intent(create, config);
  auto appended = meta_log_->append(record, Clock::now_ns());
  return appended.ok() ? Status::Ok() : appended.status();
}

void Broker::persist_commit(const std::string& group,
                            const TopicPartition& tp, std::uint64_t offset) {
  ReaderLock lock(mutex_);
  if (!offsets_log_) return;
  Record record;
  record.key = group;
  record.value = encode_committed_offset(tp, offset);
  // The offsets log runs kEverySync: the commit is on stable storage
  // before the consumer's poll returns.
  if (auto r = offsets_log_->append(record, Clock::now_ns()); !r.ok()) {
    PE_LOG_WARN("persisting committed offset failed: "
                << r.status().to_string());
  }
}

Result<storage::RecoveryReport> Broker::crash_and_recover(
    double keep_fraction) {
  if (!durable()) {
    return Status::FailedPrecondition("broker '" + name_ +
                                      "' has no durable storage");
  }
  const auto t0 = Clock::now();
  WriterLock lock(mutex_);
  // Power-cut every log: fsynced prefixes survive, unsynced tails are
  // (partially) lost — possibly mid-frame, which recovery must truncate.
  for (auto& [tname, topic] : topics_) {
    for (std::uint32_t p = 0; p < topic->partition_count(); ++p) {
      topic->partition(p)->simulate_power_loss(keep_fraction);
    }
  }
  if (meta_log_) meta_log_->simulate_power_loss(keep_fraction);
  if (offsets_log_) offsets_log_->simulate_power_loss(keep_fraction);

  // Drop every piece of in-memory state a real process death would take.
  topics_.clear();
  offline_partitions_.clear();
  meta_log_.reset();
  offsets_log_.reset();
  coordinator_.reset();

  storage::RecoveryReport report;
  if (auto s = recover_locked(&report); !s.ok()) return s;
  const double ms =
      std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
          Clock::now() - t0)
          .count();
  tel::MetricsRegistry::global().histogram("broker.crash_recovery_ms")
      .record(ms);
  return report;
}

Status Broker::create_topic(const std::string& name, TopicConfig config) {
  if (name.empty()) return Status::InvalidArgument("empty topic name");
  if (config.partitions == 0) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  WriterLock lock(mutex_);
  if (topics_.count(name) > 0) {
    return Status::AlreadyExists("topic '" + name + "' exists");
  }
  // Write-ahead: the intent is durable before the topic serves traffic.
  // A disk failure degrades loudly to an in-memory topic rather than
  // refusing service.
  if (auto s = persist_topic_intent_locked(name, /*create=*/true, config);
      !s.ok()) {
    PE_LOG_WARN("topic intent not persisted: " << s.to_string());
  }
  auto topic = std::make_shared<Topic>(
      name, config, durable() ? topic_dir(name) : std::string(),
      options_.storage);
  topic->set_hot_bytes_counter(admission_.hot_bytes_counter());
  topics_.emplace(name, std::move(topic));
  return Status::Ok();
}

Status Broker::delete_topic(const std::string& name) {
  WriterLock lock(mutex_);
  auto it = topics_.find(name);
  if (it == topics_.end()) {
    return Status::NotFound("topic '" + name + "' not found");
  }
  if (auto s = persist_topic_intent_locked(name, /*create=*/false,
                                           it->second->config());
      !s.ok()) {
    PE_LOG_WARN("topic tombstone not persisted: " << s.to_string());
  }
  topics_.erase(it);
  if (durable()) {
    // In-flight fetches may still hold the Topic (and mmap'd views into
    // its segments) alive; unlinking the files under them is safe.
    std::error_code ec;
    std::filesystem::remove_all(topic_dir(name), ec);
    if (ec) {
      PE_LOG_WARN("removing '" << topic_dir(name) << "': " << ec.message());
    }
  }
  return Status::Ok();
}

bool Broker::has_topic(const std::string& name) const {
  ReaderLock lock(mutex_);
  return topics_.count(name) > 0;
}

std::uint32_t Broker::partition_count(const std::string& name) const {
  auto topic = find_topic(name);
  return topic ? topic->partition_count() : 0;
}

std::vector<std::string> Broker::topic_names() const {
  ReaderLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(topics_.size());
  for (const auto& [n, _] : topics_) out.push_back(n);
  return out;
}

std::shared_ptr<Topic> Broker::find_topic(const std::string& name) const {
  ReaderLock lock(mutex_);
  auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second;
}

Result<std::uint64_t> Broker::produce(const std::string& topic,
                                      std::uint32_t partition,
                                      std::vector<Record> records,
                                      const std::string& client_id) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition_offline(topic, partition)) {
    return Status::Unavailable("partition " + topic + "/" +
                               std::to_string(partition) + " offline");
  }
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  std::uint64_t bytes = 0;
  for (const auto& r : records) bytes += r.wire_size();
  const auto count = records.size();
  stats_.produce_requests.fetch_add(1, kRelaxed);

  // Admission: quota gate first (cheap bucket math), then the hot-window
  // reservation. Both reject with a transient throttle, never a drop.
  if (auto s = admission_.admit(client_id, count, bytes); !s.ok()) {
    stats_.throttled.fetch_add(1, kRelaxed);
    stats_.quota_rejections.fetch_add(1, kRelaxed);
    tel::MetricsRegistry::global().counter("broker.throttled").add();
    tel::MetricsRegistry::global().counter("broker.quota_rejections").add();
    return s;
  }
  auto reserved = admission_.reserve_hot(bytes);
  if (!reserved.ok()) {
    // One forced retention/hot-trim pass on the target partition may free
    // enough hot memory to admit without waiting out the throttle.
    log->enforce_retention();
    reserved = admission_.reserve_hot(bytes);
  }
  if (!reserved.ok()) {
    // The cap is broker-wide but the trim above is per-partition: the
    // memory may be parked in OTHER partitions, each individually under
    // its hot_max_bytes... or not trimmable at all. Sweep every partition
    // once — without this, a broker whose hot memory is spread across
    // partitions throttles forever (no append ever succeeds, so no
    // append-path retention ever runs: a livelock, not backpressure).
    trim_hot_windows();
    reserved = admission_.reserve_hot(bytes);
  }
  if (!reserved.ok()) {
    stats_.throttled.fetch_add(1, kRelaxed);
    tel::MetricsRegistry::global().counter("broker.throttled").add();
    return reserved;
  }

  auto first = log->append_batch(std::move(records));
  // The appended bytes are now carried by the hot counter itself (and any
  // rejected remainder was never appended): drop the reservation.
  admission_.release_hot(bytes);
  if (!first.ok()) return first.status();  // durable failure: nothing acked
  stats_.records_in.fetch_add(count, kRelaxed);
  stats_.bytes_in.fetch_add(bytes, kRelaxed);
  return first.value();
}

void Broker::trim_hot_windows() {
  std::vector<std::shared_ptr<Topic>> topics;
  {
    ReaderLock lock(mutex_);
    topics.reserve(topics_.size());
    for (const auto& [_, t] : topics_) topics.push_back(t);
  }
  for (const auto& t : topics) {
    for (std::uint32_t p = 0; p < t->partition_count(); ++p) {
      if (auto* log = t->partition(p)) log->enforce_retention();
    }
  }
}

void Broker::set_client_quota(const std::string& client, ClientQuota quota) {
  admission_.set_quota(client, quota);
}

void Broker::set_client_fetch_quota(const std::string& client,
                                    ClientQuota quota) {
  admission_.set_fetch_quota(client, quota);
}

Result<std::uint64_t> Broker::replicate(const std::string& topic,
                                        std::uint32_t partition,
                                        std::vector<ConsumedRecord> records) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition_offline(topic, partition)) {
    return Status::Unavailable("partition " + topic + "/" +
                               std::to_string(partition) + " offline");
  }
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  std::uint64_t bytes = 0;
  for (const auto& cr : records) bytes += cr.record.wire_size();
  const auto count = records.size();
  auto first = log->append_replicated(std::move(records));
  if (!first.ok()) return first.status();  // replica disk refused: no ack
  stats_.records_in.fetch_add(count, kRelaxed);
  stats_.bytes_in.fetch_add(bytes, kRelaxed);
  return first.value();
}

Result<std::uint32_t> Broker::select_partition(const std::string& topic,
                                               const Record& record) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  return t->select_partition(record);
}

Result<std::vector<ConsumedRecord>> Broker::fetch(
    const std::string& topic, std::uint32_t partition, const FetchSpec& spec,
    const std::string& client_id) {
  // Fetch admission (debt gate) runs before the log is touched, so a
  // throttled consumer costs the broker nothing but the bucket math.
  if (auto s = admission_.admit_fetch(client_id); !s.ok()) {
    stats_.throttled.fetch_add(1, kRelaxed);
    stats_.fetch_throttled.fetch_add(1, kRelaxed);
    return s;
  }
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition_offline(topic, partition)) {
    return Status::Unavailable("partition " + topic + "/" +
                               std::to_string(partition) + " offline");
  }
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  auto result = log->fetch(spec);
  if (!result.ok()) return result.status();
  auto records = std::move(result).value();
  std::uint64_t bytes = 0;
  for (auto& r : records) {
    r.topic = topic;
    r.partition = partition;
    bytes += r.record.wire_size();
  }
  stats_.fetch_requests.fetch_add(1, kRelaxed);
  stats_.records_out.fetch_add(records.size(), kRelaxed);
  stats_.bytes_out.fetch_add(bytes, kRelaxed);
  // Charge-after: the served size is only known now; an overdraw parks
  // the client's buckets in debt and admit_fetch throttles the next poll.
  if (!records.empty()) {
    admission_.charge_fetch(client_id, records.size(), bytes);
  }
  return records;
}

Result<std::uint64_t> Broker::end_offset(const std::string& topic,
                                         std::uint32_t partition) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->end_offset();
}

Result<std::uint64_t> Broker::log_start_offset(const std::string& topic,
                                               std::uint32_t partition) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->log_start_offset();
}

Result<std::uint64_t> Broker::offset_for_timestamp(
    const std::string& topic, std::uint32_t partition,
    std::uint64_t ts_ns) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->offset_for_timestamp(ts_ns);
}

Status Broker::truncate_partition(const std::string& topic,
                                  std::uint32_t partition,
                                  std::uint64_t offset) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  return log->truncate_suffix(offset);
}

Status Broker::dead_letter(const std::string& origin_topic,
                           std::uint32_t origin_partition, Record record,
                           const std::string& reason) {
  if (!has_topic(origin_topic)) {
    return Status::NotFound("topic '" + origin_topic + "' not found");
  }
  const std::string dlq = dead_letter_topic_name(origin_topic);
  TopicConfig config;
  config.partitions = 1;
  if (auto s = create_topic(dlq, config);
      !s.ok() && s.code() != StatusCode::kAlreadyExists) {
    return s;
  }
  // The payload rides along as a shared view; only the key is rewritten.
  record.key = origin_topic + "/" + std::to_string(origin_partition) + "/" +
               reason + "/" + record.key;
  std::vector<Record> batch;
  batch.push_back(std::move(record));
  auto produced = produce(dlq, 0, std::move(batch));
  if (!produced.ok()) return produced.status();
  stats_.records_dead_lettered.fetch_add(1, kRelaxed);
  return Status::Ok();
}

Status Broker::set_partition_offline(const std::string& topic,
                                     std::uint32_t partition, bool offline) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  if (partition >= t->partition_count()) {
    return Status::OutOfRange("partition out of range");
  }
  WriterLock lock(mutex_);
  if (offline) {
    offline_partitions_.insert({topic, partition});
  } else {
    offline_partitions_.erase({topic, partition});
  }
  return Status::Ok();
}

bool Broker::partition_offline(const std::string& topic,
                               std::uint32_t partition) const {
  ReaderLock lock(mutex_);
  if (offline_partitions_.empty()) return false;
  return offline_partitions_.count({topic, partition}) > 0;
}

BrokerStats Broker::stats() const {
  BrokerStats out;
  out.records_in = stats_.records_in.load(kRelaxed);
  out.bytes_in = stats_.bytes_in.load(kRelaxed);
  out.records_out = stats_.records_out.load(kRelaxed);
  out.bytes_out = stats_.bytes_out.load(kRelaxed);
  out.produce_requests = stats_.produce_requests.load(kRelaxed);
  out.fetch_requests = stats_.fetch_requests.load(kRelaxed);
  out.records_dead_lettered = stats_.records_dead_lettered.load(kRelaxed);
  out.throttled = stats_.throttled.load(kRelaxed);
  out.quota_rejections = stats_.quota_rejections.load(kRelaxed);
  out.fetch_throttled = stats_.fetch_throttled.load(kRelaxed);
  return out;
}

std::uint64_t Broker::retained_bytes() const {
  ReaderLock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [_, t] : topics_) total += t->total_bytes();
  return total;
}

}  // namespace pe::broker
