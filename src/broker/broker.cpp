#include "broker/broker.h"

namespace pe::broker {

Broker::Broker(net::SiteId site, std::string name)
    : site_(std::move(site)),
      name_(std::move(name)),
      coordinator_([this](const std::string& topic) {
        return partition_count(topic);
      }) {}

Status Broker::create_topic(const std::string& name, TopicConfig config) {
  if (name.empty()) return Status::InvalidArgument("empty topic name");
  if (config.partitions == 0) {
    return Status::InvalidArgument("topic needs >= 1 partition");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (topics_.count(name) > 0) {
    return Status::AlreadyExists("topic '" + name + "' exists");
  }
  topics_.emplace(name, std::make_shared<Topic>(name, config));
  return Status::Ok();
}

Status Broker::delete_topic(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (topics_.erase(name) == 0) {
    return Status::NotFound("topic '" + name + "' not found");
  }
  return Status::Ok();
}

bool Broker::has_topic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return topics_.count(name) > 0;
}

std::uint32_t Broker::partition_count(const std::string& name) const {
  auto topic = find_topic(name);
  return topic ? topic->partition_count() : 0;
}

std::vector<std::string> Broker::topic_names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(topics_.size());
  for (const auto& [n, _] : topics_) out.push_back(n);
  return out;
}

std::shared_ptr<Topic> Broker::find_topic(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = topics_.find(name);
  return it == topics_.end() ? nullptr : it->second;
}

Result<std::uint64_t> Broker::produce(const std::string& topic,
                                      std::uint32_t partition,
                                      std::vector<Record> records) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  std::uint64_t bytes = 0;
  for (const auto& r : records) bytes += r.wire_size();
  const auto count = records.size();
  const std::uint64_t first = log->append_batch(std::move(records));
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.produce_requests += 1;
    stats_.records_in += count;
    stats_.bytes_in += bytes;
  }
  return first;
}

Result<std::uint32_t> Broker::select_partition(const std::string& topic,
                                               const Record& record) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  return t->select_partition(record);
}

Result<std::vector<ConsumedRecord>> Broker::fetch(const std::string& topic,
                                                  std::uint32_t partition,
                                                  const FetchSpec& spec) {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  PartitionLog* log = t->partition(partition);
  if (!log) {
    return Status::OutOfRange("partition " + std::to_string(partition) +
                              " out of range for topic '" + topic + "'");
  }
  auto result = log->fetch(spec);
  if (!result.ok()) return result.status();
  auto records = std::move(result).value();
  std::uint64_t bytes = 0;
  for (auto& r : records) {
    r.topic = topic;
    r.partition = partition;
    bytes += r.record.wire_size();
  }
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.fetch_requests += 1;
    stats_.records_out += records.size();
    stats_.bytes_out += bytes;
  }
  return records;
}

Result<std::uint64_t> Broker::end_offset(const std::string& topic,
                                         std::uint32_t partition) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->end_offset();
}

Result<std::uint64_t> Broker::log_start_offset(const std::string& topic,
                                               std::uint32_t partition) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->log_start_offset();
}

Result<std::uint64_t> Broker::offset_for_timestamp(
    const std::string& topic, std::uint32_t partition,
    std::uint64_t ts_ns) const {
  auto t = find_topic(topic);
  if (!t) return Status::NotFound("topic '" + topic + "' not found");
  const PartitionLog* log = t->partition(partition);
  if (!log) return Status::OutOfRange("partition out of range");
  return log->offset_for_timestamp(ts_ns);
}

BrokerStats Broker::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

std::uint64_t Broker::retained_bytes() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [_, t] : topics_) total += t->total_bytes();
  return total;
}

}  // namespace pe::broker
