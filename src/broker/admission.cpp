#include "broker/admission.h"

#include <algorithm>
#include <cmath>

namespace pe::broker {

namespace {

constexpr double kNsPerSec = 1e9;

Duration at_least(Duration d, Duration floor) { return std::max(d, floor); }

}  // namespace

// --- TokenBucket -----------------------------------------------------------

TokenBucket::TokenBucket(double rate_per_sec, double burst)
    : rate_(std::max(rate_per_sec, 1e-9)),
      burst_(std::max(burst, 1.0)),
      tokens_(burst_) {}

void TokenBucket::refill(std::uint64_t now_ns) {
  if (!primed_) {
    primed_ = true;
    last_ns_ = now_ns;
    return;
  }
  if (now_ns <= last_ns_) return;
  const double elapsed_s =
      static_cast<double>(now_ns - last_ns_) / kNsPerSec;
  last_ns_ = now_ns;
  tokens_ = std::min(burst_, tokens_ + elapsed_s * rate_);
}

bool TokenBucket::can_acquire(double n, std::uint64_t now_ns,
                              Duration* retry_after) {
  refill(now_ns);
  if (n <= tokens_) return true;
  // Oversized request (bigger than the bucket can ever hold): admissible
  // against a full bucket, overdrawing it into debt.
  if (n > burst_ && tokens_ >= burst_) return true;
  if (retry_after != nullptr) {
    const double deficit = std::min(n, burst_) - tokens_;
    *retry_after = Duration(
        static_cast<std::int64_t>(std::ceil(deficit / rate_ * kNsPerSec)));
  }
  return false;
}

bool TokenBucket::try_acquire(double n, std::uint64_t now_ns,
                              Duration* retry_after) {
  if (!can_acquire(n, now_ns, retry_after)) return false;
  commit(n);
  return true;
}

double TokenBucket::available(std::uint64_t now_ns) {
  refill(now_ns);
  return tokens_;
}

// --- AdmissionController ---------------------------------------------------

AdmissionController::AdmissionController(AdmissionConfig config)
    : config_(config) {}

AdmissionController::ClientState AdmissionController::make_state(
    const ClientQuota& quota) const {
  ClientState state;
  const double burst_s = std::max(quota.burst_seconds, 1e-3);
  if (quota.bytes_per_sec > 0) {
    state.bytes.emplace(quota.bytes_per_sec, quota.bytes_per_sec * burst_s);
  }
  if (quota.records_per_sec > 0) {
    state.records.emplace(quota.records_per_sec,
                          quota.records_per_sec * burst_s);
  }
  return state;
}

std::uint64_t AdmissionController::advance_clock(ClientState& state) {
  const std::uint64_t now_wall = Clock::now_ns();
  if (state.last_wall_ns != 0 && now_wall > state.last_wall_ns) {
    const double elapsed_emulated =
        static_cast<double>(now_wall - state.last_wall_ns) *
        Clock::time_scale();
    state.emulated_ns += static_cast<std::uint64_t>(elapsed_emulated);
  }
  state.last_wall_ns = now_wall;
  return state.emulated_ns;
}

void AdmissionController::apply_fetch_quota(ClientState& state,
                                            const ClientQuota& quota) {
  state.fetch_bytes.reset();
  state.fetch_records.reset();
  const double burst_s = std::max(quota.burst_seconds, 1e-3);
  if (quota.bytes_per_sec > 0) {
    state.fetch_bytes.emplace(quota.bytes_per_sec,
                              quota.bytes_per_sec * burst_s);
  }
  if (quota.records_per_sec > 0) {
    state.fetch_records.emplace(quota.records_per_sec,
                                quota.records_per_sec * burst_s);
  }
}

AdmissionController::ClientState& AdmissionController::state_for(
    const std::string& client) {
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    it = clients_.emplace(client, make_state(config_.default_quota)).first;
    apply_fetch_quota(it->second, config_.default_fetch_quota);
  }
  return it->second;
}

void AdmissionController::set_quota(const std::string& client,
                                    ClientQuota quota) {
  MutexLock lock(mutex_);
  // Replace the produce-side buckets only; fetch buckets (and the
  // client's emulated clock) survive.
  ClientState fresh = make_state(quota);
  ClientState& state = state_for(client);
  state.bytes = std::move(fresh.bytes);
  state.records = std::move(fresh.records);
}

void AdmissionController::set_fetch_quota(const std::string& client,
                                          ClientQuota quota) {
  MutexLock lock(mutex_);
  apply_fetch_quota(state_for(client), quota);
}

Status AdmissionController::admit(const std::string& client,
                                  std::size_t records, std::uint64_t bytes) {
  if (client.empty()) return Status::Ok();  // internal: not quota-gated
  MutexLock lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end()) {
    if (config_.default_quota.unlimited()) return Status::Ok();
  }
  ClientState& state = state_for(client);
  if (!state.bytes && !state.records) return Status::Ok();
  const std::uint64_t now = advance_clock(state);

  // Check both buckets before charging either: a refusal must not leak
  // tokens out of the dimension that would have admitted.
  Duration hint = Duration::zero();
  Duration d;
  bool ok = true;
  if (state.bytes &&
      !state.bytes->can_acquire(static_cast<double>(bytes), now, &d)) {
    ok = false;
    hint = std::max(hint, d);
  }
  if (state.records &&
      !state.records->can_acquire(static_cast<double>(records), now, &d)) {
    ok = false;
    hint = std::max(hint, d);
  }
  if (!ok) {
    return Status::Throttled(
        "client '" + client + "' over quota",
        at_least(hint, config_.min_retry_after));
  }
  if (state.bytes) state.bytes->commit(static_cast<double>(bytes));
  if (state.records) state.records->commit(static_cast<double>(records));
  return Status::Ok();
}

Status AdmissionController::admit_fetch(const std::string& client) {
  if (client.empty()) return Status::Ok();  // internal: not quota-gated
  MutexLock lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end() && config_.default_fetch_quota.unlimited()) {
    return Status::Ok();
  }
  ClientState& state = state_for(client);
  if (!state.fetch_bytes && !state.fetch_records) return Status::Ok();
  const std::uint64_t now = advance_clock(state);

  // Debt gate: the fetch size is unknown until it is served, so the
  // previous fetch's charge may have driven a bucket negative; this fetch
  // waits until the debt refills. The hint is exactly the refill time of
  // the deepest debt.
  Duration hint = Duration::zero();
  bool ok = true;
  auto check = [&](std::optional<TokenBucket>& bucket) {
    if (!bucket) return;
    const double avail = bucket->available(now);
    if (avail >= 0) return;
    ok = false;
    hint = std::max(hint, Duration(static_cast<std::int64_t>(
                              std::ceil(-avail / bucket->rate() * kNsPerSec))));
  };
  check(state.fetch_bytes);
  check(state.fetch_records);
  if (!ok) {
    return Status::Throttled("client '" + client + "' over fetch quota",
                             at_least(hint, config_.min_retry_after));
  }
  return Status::Ok();
}

void AdmissionController::charge_fetch(const std::string& client,
                                       std::size_t records,
                                       std::uint64_t bytes) {
  if (client.empty()) return;
  MutexLock lock(mutex_);
  auto it = clients_.find(client);
  if (it == clients_.end() && config_.default_fetch_quota.unlimited()) {
    return;
  }
  ClientState& state = state_for(client);
  const std::uint64_t now = advance_clock(state);
  if (state.fetch_bytes) {
    (void)state.fetch_bytes->available(now);  // refill before overdrawing
    state.fetch_bytes->commit(static_cast<double>(bytes));
  }
  if (state.fetch_records) {
    (void)state.fetch_records->available(now);
    state.fetch_records->commit(static_cast<double>(records));
  }
}

Status AdmissionController::reserve_hot(std::uint64_t bytes) {
  const std::uint64_t cap = config_.max_hot_window_bytes;
  if (cap == 0 || bytes == 0) return Status::Ok();
  const auto want = static_cast<std::int64_t>(bytes);
  // Reservation protocol: add our bytes to the in-flight counter first,
  // then test. `prior` (the RMW's return value) already contains every
  // concurrent reservation that won the race, so for any interleaving the
  // k-th successful reserver proves hot + sum(first k reservations) <=
  // cap — admitted appends can never overshoot the cap together.
  const std::int64_t prior =
      inflight_.fetch_add(want, std::memory_order_acq_rel);
  const std::int64_t hot = hot_bytes_->load(std::memory_order_acquire);
  if (hot + prior + want > static_cast<std::int64_t>(cap)) {
    // Progress guarantee: a batch bigger than the whole cap is admitted
    // when nothing else occupies the broker (it will be trimmed or
    // drained like any other data).
    if (!(hot == 0 && prior == 0 &&
          bytes > cap)) {
      inflight_.fetch_sub(want, std::memory_order_acq_rel);
      return Status::Throttled(
          "hot-window cap: " + std::to_string(hot + prior) + "+" +
              std::to_string(bytes) + " bytes would exceed " +
              std::to_string(cap),
          config_.min_retry_after);
    }
  }
  return Status::Ok();
}

void AdmissionController::release_hot(std::uint64_t bytes) {
  if (config_.max_hot_window_bytes == 0 || bytes == 0) return;
  inflight_.fetch_sub(static_cast<std::int64_t>(bytes),
                      std::memory_order_acq_rel);
}

}  // namespace pe::broker
