// Edge admission control: per-client token-bucket quotas and a broker-wide
// bound on hot-window memory.
//
// Pilot-Edge's ingress story is a constrained broker fed by a huge device
// fleet. Two mechanisms keep it alive under bursty traffic:
//
//  - Per-client quotas (bytes/s and records/s, token buckets with a
//    configurable burst depth). A client over its quota is *throttled*,
//    not dropped: the produce fails with Status::Throttled — a
//    RESOURCE_EXHAUSTED carrying a retry-after hint, which is transient,
//    so every retrying client (ClusterProducer, RetryPolicy users) backs
//    off and succeeds once the bucket refills. Zero acked-record loss.
//
//  - A hot-window byte cap across the whole broker: the sum of all
//    partitions' in-memory deques is never allowed past the cap. Produce
//    reserves its bytes before appending (a reservation counter makes the
//    bound race-free under concurrent producers), and a reservation that
//    would overshoot throttles the producer instead of OOMing the broker
//    — end-to-end backpressure. Durable partitions additionally trim
//    their hot deque to RetentionPolicy::hot_max_bytes (cold fetches are
//    served from disk), which is what keeps a capped broker draining in
//    steady state.
//
// All rates and hints are in *emulated* time (Clock::time_scale), like
// every other duration in the system.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"

namespace pe::broker {

/// Token bucket in the emulated-time domain. Not thread-safe on its own:
/// the AdmissionController serializes access (and the tests drive it
/// directly with synthetic timestamps).
class TokenBucket {
 public:
  /// `rate_per_sec` tokens accrue per emulated second, up to `burst`
  /// tokens of depth. The bucket starts full.
  TokenBucket(double rate_per_sec, double burst);

  /// Takes `n` tokens if the bucket allows it at emulated time `now_ns`.
  /// On refusal returns false and sets `*retry_after` (when non-null) to
  /// the emulated duration after which the acquire would succeed.
  ///
  /// A request larger than the whole burst can never accumulate enough
  /// tokens; it is allowed to overdraw a *full* bucket (tokens go
  /// negative, stalling subsequent acquires until the debt refills) so
  /// oversized batches make progress while the long-run rate stays
  /// bounded.
  bool try_acquire(double n, std::uint64_t now_ns,
                   Duration* retry_after = nullptr);

  /// Like try_acquire but without consuming: refills to `now_ns` and
  /// reports admissibility. commit() then takes the tokens; the caller
  /// must not let time pass (or interleave other acquires) in between.
  bool can_acquire(double n, std::uint64_t now_ns,
                   Duration* retry_after = nullptr);
  void commit(double n) { tokens_ -= n; }

  double available(std::uint64_t now_ns);
  double rate() const { return rate_; }
  double burst() const { return burst_; }

 private:
  void refill(std::uint64_t now_ns);

  double rate_;
  double burst_;
  double tokens_;
  std::uint64_t last_ns_ = 0;
  bool primed_ = false;
};

/// Per-client rate limits. Zero means unlimited on that dimension.
struct ClientQuota {
  double bytes_per_sec = 0;
  double records_per_sec = 0;
  /// Bucket depth as seconds of quota: burst = rate * burst_seconds.
  double burst_seconds = 1.0;

  bool unlimited() const { return bytes_per_sec <= 0 && records_per_sec <= 0; }
};

/// Broker-wide admission configuration.
struct AdmissionConfig {
  /// Applied to every *identified* client (non-empty client id) without
  /// an explicit set_quota entry. Internal produces (dead-letter routing,
  /// replication) carry no client id and bypass quotas — they must drain
  /// — but never the hot-window cap accounting.
  ClientQuota default_quota;
  /// Fetch-side mirror of `default_quota`: applied to every identified
  /// consumer client without an explicit set_fetch_quota entry. Fetch
  /// sizes are unknown until served, so the gate is debt-based: a fetch
  /// is admitted while the client's buckets are non-negative, then
  /// charged for what it actually carried (possibly overdrawing into
  /// debt, which blocks subsequent fetches until the debt refills —
  /// Kafka's consumer byte-rate quotas work the same way).
  ClientQuota default_fetch_quota;
  /// Cap on the sum of all partitions' hot-window (in-memory deque)
  /// bytes. 0 = unbounded. When a produce would overshoot, it is
  /// throttled (after one retention pass) instead of appended.
  std::uint64_t max_hot_window_bytes = 0;
  /// Floor for retry-after hints (emulated); also the hint attached to
  /// hot-window throttles, which have no natural refill rate.
  Duration min_retry_after = std::chrono::microseconds(200);
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionConfig config);

  const AdmissionConfig& config() const { return config_; }

  /// Installs (or replaces) an explicit quota for a client id.
  void set_quota(const std::string& client, ClientQuota quota);

  /// Installs (or replaces) an explicit fetch quota for a client id.
  void set_fetch_quota(const std::string& client, ClientQuota quota);

  /// Quota gate. Consumes from the client's byte and record buckets
  /// atomically (neither is charged when either refuses). Empty client
  /// ids are exempt. Refusals are Status::Throttled with a retry-after
  /// hint, i.e. transient.
  Status admit(const std::string& client, std::size_t records,
               std::uint64_t bytes);

  /// Fetch-side quota gate (debt model): refuses with Status::Throttled
  /// while the client's fetch buckets are in debt from previous charges.
  /// Empty client ids are exempt (internal fetches: replication,
  /// long-poll wait probes).
  Status admit_fetch(const std::string& client);

  /// Charges a served fetch against the client's fetch buckets. May
  /// overdraw; admit_fetch gates until the debt refills.
  void charge_fetch(const std::string& client, std::size_t records,
                    std::uint64_t bytes);

  /// Hot-window reservation: returns OK when `bytes` fit under the cap
  /// given the current hot bytes plus all in-flight reservations — the
  /// reservation makes the cap race-free: concurrent producers each see
  /// the others' reserved bytes, so the sum of admitted appends can never
  /// overshoot. The caller MUST call release_hot(bytes) after the append
  /// lands (the appended bytes are then carried by the hot counter
  /// itself). A batch larger than the whole cap is admitted only when the
  /// broker is otherwise empty, so it can still make progress.
  Status reserve_hot(std::uint64_t bytes);
  void release_hot(std::uint64_t bytes);

  /// The counter partition logs mirror their deque bytes into.
  std::shared_ptr<std::atomic<std::int64_t>> hot_bytes_counter() const {
    return hot_bytes_;
  }
  std::uint64_t hot_window_bytes() const {
    const auto v = hot_bytes_->load(std::memory_order_relaxed);
    return v > 0 ? static_cast<std::uint64_t>(v) : 0;
  }

 private:
  struct ClientState {
    std::optional<TokenBucket> bytes;
    std::optional<TokenBucket> records;
    /// Fetch-side buckets (consumer byte/record rates), charged after the
    /// fetch is served.
    std::optional<TokenBucket> fetch_bytes;
    std::optional<TokenBucket> fetch_records;
    /// Emulated clock for this client's buckets, advanced by wall elapsed
    /// time x Clock::time_scale at each admit.
    std::uint64_t emulated_ns = 0;
    std::uint64_t last_wall_ns = 0;
  };

  ClientState make_state(const ClientQuota& quota) const;
  /// Installs the fetch-side buckets of `quota` into an existing state.
  static void apply_fetch_quota(ClientState& state, const ClientQuota& quota);
  /// Finds or creates the state for a client, seeding missing buckets
  /// from the config defaults.
  ClientState& state_for(const std::string& client) PE_REQUIRES(mutex_);
  /// Advances the client's emulated clock to now.
  static std::uint64_t advance_clock(ClientState& state);

  const AdmissionConfig config_;
  // Leaf-ish lock in the broker domain: held only around bucket math,
  // never while a partition or registry lock is taken.
  mutable Mutex mutex_{"broker.admission"};
  std::map<std::string, ClientState> clients_ PE_GUARDED_BY(mutex_);
  std::shared_ptr<std::atomic<std::int64_t>> hot_bytes_ =
      std::make_shared<std::atomic<std::int64_t>>(0);
  std::atomic<std::int64_t> inflight_{0};
};

}  // namespace pe::broker
