// The broker service: topic registry + group coordinator + server stats.
//
// A Broker lives on a fabric site (typically hosted by a BrokerService
// pilot). Clients (Producer/Consumer) talk to it through method calls but
// charge every payload to the fabric link between their site and the
// broker's site — that is where the paper's WAN effects come from.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "broker/group_coordinator.h"
#include "broker/topic.h"
#include "network/site.h"

namespace pe::broker {

/// Aggregate broker-side counters (exported to telemetry).
struct BrokerStats {
  std::uint64_t records_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t produce_requests = 0;
  std::uint64_t fetch_requests = 0;
  std::uint64_t records_dead_lettered = 0;
};

/// Name of the dead-letter topic shadowing `topic` (Kafka convention).
inline std::string dead_letter_topic_name(const std::string& topic) {
  return topic + ".dlq";
}

class Broker {
 public:
  explicit Broker(net::SiteId site, std::string name = "broker-0");

  const net::SiteId& site() const { return site_; }
  const std::string& name() const { return name_; }

  // --- admin ---
  Status create_topic(const std::string& name, TopicConfig config);
  Status delete_topic(const std::string& name);
  bool has_topic(const std::string& name) const;
  /// Partition count for a topic; 0 when unknown.
  std::uint32_t partition_count(const std::string& name) const;
  std::vector<std::string> topic_names() const;

  // --- data plane (used by Producer/Consumer clients) ---
  /// Appends records to a specific partition; returns the first offset.
  Result<std::uint64_t> produce(const std::string& topic,
                                std::uint32_t partition,
                                std::vector<Record> records);

  /// Chooses a partition using the topic's partitioner.
  Result<std::uint32_t> select_partition(const std::string& topic,
                                         const Record& record);

  Result<std::vector<ConsumedRecord>> fetch(const std::string& topic,
                                            std::uint32_t partition,
                                            const FetchSpec& spec);

  /// Next offset to be written in a partition ("high watermark").
  Result<std::uint64_t> end_offset(const std::string& topic,
                                   std::uint32_t partition) const;
  Result<std::uint64_t> log_start_offset(const std::string& topic,
                                         std::uint32_t partition) const;
  /// Offset of the first record at/after a broker timestamp
  /// (offsetsForTimes).
  Result<std::uint64_t> offset_for_timestamp(const std::string& topic,
                                             std::uint32_t partition,
                                             std::uint64_t ts_ns) const;

  /// Routes a record that exhausted its processing retries to the
  /// per-topic dead-letter topic ("<origin>.dlq", created on first use
  /// with one partition). The record key is prefixed with its origin
  /// coordinates and the failure reason so downstream consumers can triage
  /// without a header model.
  Status dead_letter(const std::string& origin_topic,
                     std::uint32_t origin_partition, Record record,
                     const std::string& reason);

  // --- chaos injection (fault module) ---
  /// Takes a partition offline: produce/fetch against it fail with
  /// UNAVAILABLE until it is brought back (models a lost partition
  /// leader). The retained log is NOT discarded.
  Status set_partition_offline(const std::string& topic,
                               std::uint32_t partition, bool offline);
  bool partition_offline(const std::string& topic,
                         std::uint32_t partition) const;

  GroupCoordinator& coordinator() { return coordinator_; }

  BrokerStats stats() const;

  /// Total bytes currently retained across all topics.
  std::uint64_t retained_bytes() const;

 private:
  std::shared_ptr<Topic> find_topic(const std::string& name) const;

  // Per-counter atomics: the data plane bumps these without touching any
  // broker-global lock (one cache-line ping instead of a mutex round trip
  // per produce/fetch).
  struct AtomicStats {
    std::atomic<std::uint64_t> records_in{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> records_out{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> produce_requests{0};
    std::atomic<std::uint64_t> fetch_requests{0};
    std::atomic<std::uint64_t> records_dead_lettered{0};
  };

  const net::SiteId site_;
  const std::string name_;
  // Reader-writer registry lock: produce/fetch only ever take it shared
  // (topic lookup + offline check); per-partition serialization lives in
  // each PartitionLog's own mutex. Admin ops (create/delete topic, chaos
  // offline toggles) take it exclusive. Top of the broker lock domain:
  // PartitionLog mutexes may be acquired under it (retained_bytes), never
  // above it.
  mutable SharedMutex mutex_{"broker.registry",
                             lock_rank(kLockDomainBroker, 1)};
  std::map<std::string, std::shared_ptr<Topic>> topics_ PE_GUARDED_BY(mutex_);
  std::set<std::pair<std::string, std::uint32_t>> offline_partitions_
      PE_GUARDED_BY(mutex_);
  GroupCoordinator coordinator_;
  AtomicStats stats_;
};

}  // namespace pe::broker
