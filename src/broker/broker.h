// The broker service: topic registry + group coordinator + server stats.
//
// A Broker lives on a fabric site (typically hosted by a BrokerService
// pilot). Clients (Producer/Consumer) talk to it through method calls but
// charge every payload to the fabric link between their site and the
// broker's site — that is where the paper's WAN effects come from.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "broker/admission.h"
#include "broker/group_coordinator.h"
#include "broker/topic.h"
#include "network/site.h"
#include "storage/log_dir.h"
#include "storage/storage_config.h"

namespace pe::broker {

/// Broker-level configuration. With a non-empty `durable_dir` the broker
/// keeps three kinds of durable state under it:
///   <dir>/__meta          — topic create/delete intents (always fsynced)
///   <dir>/__offsets       — consumer-group committed offsets (fsynced
///                           per commit: the durability contract is zero
///                           committed-offset loss across a crash)
///   <dir>/topics/<t>/p<n> — one segmented commit log per partition,
///                           flushed per `storage.flush_policy`
/// Reopening the same directory — or calling crash_and_recover() —
/// replays all three back into a working broker.
struct BrokerOptions {
  std::string durable_dir;
  storage::StorageConfig storage;
  /// Edge admission control: per-client quotas + hot-window memory cap.
  AdmissionConfig admission;
};

/// Aggregate broker-side counters (exported to telemetry).
struct BrokerStats {
  std::uint64_t records_in = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t records_out = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t produce_requests = 0;
  std::uint64_t fetch_requests = 0;
  std::uint64_t records_dead_lettered = 0;
  /// Produces rejected with a transient throttle (quota or hot-window
  /// cap). quota_rejections counts the per-client-quota subset.
  std::uint64_t throttled = 0;
  std::uint64_t quota_rejections = 0;
  /// Fetches refused because the client's fetch buckets were in debt.
  std::uint64_t fetch_throttled = 0;
};

/// Name of the dead-letter topic shadowing `topic` (Kafka convention).
inline std::string dead_letter_topic_name(const std::string& topic) {
  return topic + ".dlq";
}

class Broker {
 public:
  explicit Broker(net::SiteId site, std::string name = "broker-0");
  /// Durable broker: recovers any state already under
  /// `options.durable_dir` before the constructor returns.
  Broker(net::SiteId site, BrokerOptions options,
         std::string name = "broker-0");

  const net::SiteId& site() const { return site_; }
  const std::string& name() const { return name_; }
  bool durable() const { return !options_.durable_dir.empty(); }

  // --- admin ---
  Status create_topic(const std::string& name, TopicConfig config);
  Status delete_topic(const std::string& name);
  bool has_topic(const std::string& name) const;
  /// Partition count for a topic; 0 when unknown.
  std::uint32_t partition_count(const std::string& name) const;
  std::vector<std::string> topic_names() const;

  // --- data plane (used by Producer/Consumer clients) ---
  /// Appends records to a specific partition; returns the first offset.
  ///
  /// `client_id` identifies the producing client for admission control: a
  /// client over its quota (explicit set_client_quota entry, or the
  /// default quota) is rejected with Status::Throttled — transient, carry
  /// the retry-after hint, retry and it succeeds. Empty = internal caller
  /// (dead-letter routing, tests), quota-exempt. The hot-window byte cap
  /// applies regardless of client id.
  Result<std::uint64_t> produce(const std::string& topic,
                                std::uint32_t partition,
                                std::vector<Record> records,
                                const std::string& client_id = {});

  /// Replication append (cluster layer): appends records fetched from a
  /// partition leader, preserving their broker timestamps instead of
  /// re-stamping, so the same offset carries the same timestamp on every
  /// replica. Returns the first offset.
  Result<std::uint64_t> replicate(const std::string& topic,
                                  std::uint32_t partition,
                                  std::vector<ConsumedRecord> records);

  /// Chooses a partition using the topic's partitioner.
  Result<std::uint32_t> select_partition(const std::string& topic,
                                         const Record& record);

  /// `client_id` identifies the fetching client for fetch-side admission
  /// control (mirror of the produce path): a client whose fetch buckets
  /// are in debt is refused with Status::Throttled + retry-after hint,
  /// and a served fetch is charged for the bytes/records it actually
  /// carried. Empty = internal caller (replication, long-poll wait
  /// probes), quota-exempt.
  Result<std::vector<ConsumedRecord>> fetch(const std::string& topic,
                                            std::uint32_t partition,
                                            const FetchSpec& spec,
                                            const std::string& client_id = {});

  /// Next offset to be written in a partition ("high watermark").
  Result<std::uint64_t> end_offset(const std::string& topic,
                                   std::uint32_t partition) const;
  Result<std::uint64_t> log_start_offset(const std::string& topic,
                                         std::uint32_t partition) const;
  /// Offset of the first record at/after a broker timestamp
  /// (offsetsForTimes).
  Result<std::uint64_t> offset_for_timestamp(const std::string& topic,
                                             std::uint32_t partition,
                                             std::uint64_t ts_ns) const;

  /// Discards every record at/above `offset` in a partition (both tiers)
  /// and resumes the offset sequence there. Used by the cluster layer to
  /// repair divergence: a deposed leader's un-replicated suffix is cut
  /// before it catches up from the new leader.
  Status truncate_partition(const std::string& topic, std::uint32_t partition,
                            std::uint64_t offset);

  /// Routes a record that exhausted its processing retries to the
  /// per-topic dead-letter topic ("<origin>.dlq", created on first use
  /// with one partition). The record key is prefixed with its origin
  /// coordinates and the failure reason so downstream consumers can triage
  /// without a header model.
  Status dead_letter(const std::string& origin_topic,
                     std::uint32_t origin_partition, Record record,
                     const std::string& reason);

  // --- chaos injection (fault module) ---
  /// Takes a partition offline: produce/fetch against it fail with
  /// UNAVAILABLE until it is brought back (models a lost partition
  /// leader). The retained log is NOT discarded.
  Status set_partition_offline(const std::string& topic,
                               std::uint32_t partition, bool offline);
  bool partition_offline(const std::string& topic,
                         std::uint32_t partition) const;

  /// Hard-crash simulation for a durable broker: every partition log,
  /// the topic-metadata log, and the offsets log lose their unsynced
  /// tail (keeping `keep_fraction` of the dirty bytes, possibly cutting
  /// a frame in half), all in-memory state — topics, hot windows, group
  /// offsets — is dropped, and the broker recovers from disk exactly as
  /// a fresh process reopening the directory would. Returns the
  /// aggregated recovery report; fails on an in-memory broker.
  Result<storage::RecoveryReport> crash_and_recover(
      double keep_fraction = 0.0);

  GroupCoordinator& coordinator() { return coordinator_; }

  BrokerStats stats() const;

  /// Total bytes currently retained across all topics.
  std::uint64_t retained_bytes() const;

  // --- admission control ---
  /// Installs an explicit quota for a client id (overrides the default).
  void set_client_quota(const std::string& client, ClientQuota quota);
  /// Installs an explicit fetch-side quota for a client id.
  void set_client_fetch_quota(const std::string& client, ClientQuota quota);
  /// Sum of all partitions' in-memory hot-window bytes right now.
  std::uint64_t hot_window_bytes() const {
    return admission_.hot_window_bytes();
  }
  const AdmissionConfig& admission_config() const {
    return admission_.config();
  }

 private:
  std::shared_ptr<Topic> find_topic(const std::string& name) const;

  /// Forces one retention/hot-trim pass over every partition. Run when a
  /// hot-window reservation fails: the broker-wide cap may be held up by
  /// partitions other than the produce target.
  void trim_hot_windows();

  /// Opens (or reopens) the meta/offsets logs and replays them: topic
  /// intents rebuild the registry (each topic recovering its partition
  /// logs), committed offsets are restored into the coordinator.
  Status recover_locked(storage::RecoveryReport* report)
      PE_REQUIRES(mutex_);
  Status persist_topic_intent_locked(const std::string& name, bool create,
                                     const TopicConfig& config)
      PE_REQUIRES(mutex_);
  /// Commit-listener target: appends one committed offset to the offsets
  /// log and fsyncs it. Never called with the coordinator lock held.
  void persist_commit(const std::string& group, const TopicPartition& tp,
                      std::uint64_t offset);
  std::string topic_dir(const std::string& name) const {
    return options_.durable_dir + "/topics/" + name;
  }

  // Per-counter atomics: the data plane bumps these without touching any
  // broker-global lock (one cache-line ping instead of a mutex round trip
  // per produce/fetch).
  struct AtomicStats {
    std::atomic<std::uint64_t> records_in{0};
    std::atomic<std::uint64_t> bytes_in{0};
    std::atomic<std::uint64_t> records_out{0};
    std::atomic<std::uint64_t> bytes_out{0};
    std::atomic<std::uint64_t> produce_requests{0};
    std::atomic<std::uint64_t> fetch_requests{0};
    std::atomic<std::uint64_t> records_dead_lettered{0};
    std::atomic<std::uint64_t> throttled{0};
    std::atomic<std::uint64_t> quota_rejections{0};
    std::atomic<std::uint64_t> fetch_throttled{0};
  };

  const net::SiteId site_;
  const std::string name_;
  const BrokerOptions options_;
  // Reader-writer registry lock: produce/fetch only ever take it shared
  // (topic lookup + offline check); per-partition serialization lives in
  // each PartitionLog's own mutex. Admin ops (create/delete topic, chaos
  // offline toggles) take it exclusive. Top of the broker lock domain:
  // PartitionLog mutexes may be acquired under it (retained_bytes), never
  // above it.
  mutable SharedMutex mutex_{"broker.registry",
                             lock_rank(kLockDomainBroker, 1)};
  std::map<std::string, std::shared_ptr<Topic>> topics_ PE_GUARDED_BY(mutex_);
  std::set<std::pair<std::string, std::uint32_t>> offline_partitions_
      PE_GUARDED_BY(mutex_);
  // The pointers are guarded by the registry lock (shared suffices: the
  // LogDirs are internally synchronized, only the pointer needs to stay
  // stable); they are replaced exclusively under the write lock in
  // crash_and_recover.
  std::unique_ptr<storage::LogDir> meta_log_ PE_GUARDED_BY(mutex_);
  std::unique_ptr<storage::LogDir> offsets_log_ PE_GUARDED_BY(mutex_);
  GroupCoordinator coordinator_;
  AtomicStats stats_;
  // Internally synchronized; shared hot-bytes counter is wired into every
  // topic at creation/recovery.
  AdmissionController admission_;
};

}  // namespace pe::broker
