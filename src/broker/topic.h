// Topic: a named set of partition logs plus a partitioning function.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "broker/partition_log.h"

namespace pe::broker {

/// How producers map records without an explicit partition to a partition.
enum class PartitionerKind {
  kKeyHash,     // hash(key) % partitions; empty key falls back to round-robin
  kRoundRobin,  // strict rotation regardless of key
};

struct TopicConfig {
  std::uint32_t partitions = 1;
  RetentionPolicy retention;
  PartitionerKind partitioner = PartitionerKind::kKeyHash;
};

class Topic {
 public:
  /// `durable_dir`, when non-empty, roots one storage::LogDir per
  /// partition at `<durable_dir>/p<partition>`; existing directories are
  /// recovered, so re-creating a topic after a broker restart resumes
  /// every partition's offset sequence.
  Topic(std::string name, TopicConfig config, std::string durable_dir = "",
        storage::StorageConfig storage = {});

  const std::string& name() const { return name_; }
  std::uint32_t partition_count() const {
    return static_cast<std::uint32_t>(partitions_.size());
  }
  const TopicConfig& config() const { return config_; }

  /// Chooses a partition for a record according to the topic's partitioner.
  std::uint32_t select_partition(const Record& record);

  /// The log for a partition; nullptr when out of range.
  PartitionLog* partition(std::uint32_t p);
  const PartitionLog* partition(std::uint32_t p) const;

  /// Total records across partitions (diagnostic).
  std::uint64_t total_records() const;
  std::uint64_t total_bytes() const;

  /// Installs the broker-wide hot-bytes counter on every partition (see
  /// PartitionLog::set_hot_bytes_counter).
  void set_hot_bytes_counter(std::shared_ptr<std::atomic<std::int64_t>> c);

 private:
  const std::string name_;
  const TopicConfig config_;
  std::vector<std::unique_ptr<PartitionLog>> partitions_;
  std::atomic<std::uint64_t> round_robin_{0};
};

}  // namespace pe::broker
