#include "broker/partition_log.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::broker {

PartitionLog::PartitionLog(RetentionPolicy retention)
    : retention_(retention) {}

PartitionLog::~PartitionLog() {
  // The broker-wide hot-bytes counter outlives individual logs (topics
  // get deleted, crash_and_recover rebuilds the registry): hand back this
  // log's contribution so the aggregate stays exact.
  MutexLock lock(mutex_);
  if (hot_counter_ && bytes_ > 0) {
    hot_counter_->fetch_sub(static_cast<std::int64_t>(bytes_),
                            std::memory_order_relaxed);
  }
}

void PartitionLog::set_hot_bytes_counter(
    std::shared_ptr<std::atomic<std::int64_t>> c) {
  MutexLock lock(mutex_);
  if (hot_counter_ && bytes_ > 0) {
    hot_counter_->fetch_sub(static_cast<std::int64_t>(bytes_),
                            std::memory_order_relaxed);
  }
  hot_counter_ = std::move(c);
  if (hot_counter_ && bytes_ > 0) {
    hot_counter_->fetch_add(static_cast<std::int64_t>(bytes_),
                            std::memory_order_relaxed);
  }
}

void PartitionLog::add_hot_bytes_locked(std::int64_t delta) {
  bytes_ = static_cast<std::uint64_t>(
      static_cast<std::int64_t>(bytes_) + delta);
  if (hot_counter_) {
    hot_counter_->fetch_add(delta, std::memory_order_relaxed);
  }
}

PartitionLog::PartitionLog(RetentionPolicy retention, std::string durable_dir,
                           storage::StorageConfig storage)
    : retention_(retention) {
  auto opened = storage::LogDir::open(std::move(durable_dir), storage,
                                      &recovery_report_);
  if (!opened.ok()) {
    // A partition that cannot open its durable tier still works as an
    // in-memory log — matching how the broker treats a lost disk — but
    // the failure is loud.
    PE_LOG_ERROR("durable partition log unavailable, running in-memory: "
                 << opened.status().to_string());
    return;
  }
  log_dir_ = std::move(opened).value();
  next_offset_ = log_dir_->end_offset();
}

namespace {

/// A durable-append failure fails the produce with a *transient* status:
/// the record was not acked, the producer's retry policy may try again
/// (the disk hiccup may pass, or a cluster layer may re-route to a new
/// leader). Already-transient codes pass through unchanged.
Status as_produce_error(const Status& s) {
  tel::MetricsRegistry::global().counter("storage.append_errors").add();
  if (s.is_transient()) return s;
  return Status::Unavailable("durable append failed: " + s.to_string());
}

}  // namespace

Result<std::uint64_t> PartitionLog::append(Record record) {
  std::uint64_t offset;
  {
    MutexLock lock(mutex_);
    const std::uint64_t now_ns = Clock::now_ns();
    if (log_dir_) {
      // Write-through first: the offset is only consumed once the durable
      // tier accepted the record. On failure next_offset_ stays exactly
      // at the durable end — a failed disk append is never acked.
      if (auto r = log_dir_->append(record, now_ns); !r.ok()) {
        PE_LOG_WARN("durable append failed at offset "
                    << next_offset_ << ": " << r.status().to_string());
        return as_produce_error(r.status());
      }
    }
    offset = next_offset_++;
    add_hot_bytes_locked(static_cast<std::int64_t>(record.wire_size()));
    entries_.push_back(Entry{offset, now_ns, std::move(record)});
    enforce_retention_locked();
  }
  data_available_.notify_all();
  return offset;
}

Result<std::uint64_t> PartitionLog::append_batch(std::vector<Record> records) {
  std::uint64_t first_offset;
  bool any_appended = false;
  {
    MutexLock lock(mutex_);
    first_offset = next_offset_;
    const std::uint64_t now_ns = Clock::now_ns();
    Status durable = Status::Ok();
    std::size_t accepted = records.size();
    if (log_dir_) {
      // One batched storage call: single lock acquisition, frames encoded
      // into one write buffer per segment chunk, at most one fsync.
      std::vector<storage::TimestampedRecord> batch;
      batch.reserve(records.size());
      for (const auto& r : records) batch.push_back({&r, now_ns});
      auto appended = log_dir_->append_batch(batch);
      if (!appended.ok()) {
        durable = appended.status();
        // The durably-appended prefix (possibly empty) stays: mirror it
        // into the hot window so the deque remains dense and tier-
        // consistent, but fail the batch — none of it is acked.
        const std::uint64_t durable_end = log_dir_->end_offset();
        accepted = static_cast<std::size_t>(durable_end - next_offset_);
        PE_LOG_WARN("durable batch append failed after "
                    << accepted << "/" << records.size() << " records: "
                    << durable.to_string());
      }
    }
    for (std::size_t i = 0; i < accepted; ++i) {
      add_hot_bytes_locked(static_cast<std::int64_t>(records[i].wire_size()));
      entries_.push_back(Entry{next_offset_++, now_ns,
                               std::move(records[i])});
    }
    any_appended = accepted > 0;
    enforce_retention_locked();
    if (!durable.ok()) {
      if (any_appended) data_available_.notify_all();
      return as_produce_error(durable);
    }
  }
  if (any_appended) data_available_.notify_all();
  return first_offset;
}

Result<std::uint64_t> PartitionLog::append_replicated(
    std::vector<ConsumedRecord> records) {
  std::uint64_t first_offset;
  bool any_appended = false;
  {
    MutexLock lock(mutex_);
    first_offset = next_offset_;
    Status durable = Status::Ok();
    std::size_t accepted = records.size();
    if (log_dir_) {
      std::vector<storage::TimestampedRecord> batch;
      batch.reserve(records.size());
      for (const auto& cr : records) {
        batch.push_back({&cr.record, cr.broker_timestamp_ns});
      }
      auto appended = log_dir_->append_batch(batch);
      if (!appended.ok()) {
        durable = appended.status();
        const std::uint64_t durable_end = log_dir_->end_offset();
        accepted = static_cast<std::size_t>(durable_end - next_offset_);
        PE_LOG_WARN("durable replicated append failed after "
                    << accepted << "/" << records.size() << " records: "
                    << durable.to_string());
      }
    }
    for (std::size_t i = 0; i < accepted; ++i) {
      add_hot_bytes_locked(
          static_cast<std::int64_t>(records[i].record.wire_size()));
      entries_.push_back(Entry{next_offset_++,
                               records[i].broker_timestamp_ns,
                               std::move(records[i].record)});
    }
    any_appended = accepted > 0;
    enforce_retention_locked();
    if (!durable.ok()) {
      if (any_appended) data_available_.notify_all();
      return as_produce_error(durable);
    }
  }
  if (any_appended) data_available_.notify_all();
  return first_offset;
}

Status PartitionLog::truncate_suffix(std::uint64_t offset) {
  MutexLock lock(mutex_);
  if (offset >= next_offset_) return Status::Ok();
  const std::uint64_t start =
      log_dir_ ? log_dir_->start_offset()
               : (entries_.empty() ? next_offset_ : entries_.front().offset);
  if (offset < start) {
    return Status::OutOfRange("truncate offset " + std::to_string(offset) +
                              " below log start " + std::to_string(start));
  }
  while (!entries_.empty() && entries_.back().offset >= offset) {
    add_hot_bytes_locked(
        -static_cast<std::int64_t>(entries_.back().record.wire_size()));
    entries_.pop_back();
  }
  next_offset_ = offset;
  if (log_dir_) {
    if (auto s = log_dir_->truncate_suffix(offset); !s.ok()) return s;
  }
  return Status::Ok();
}

Status PartitionLog::sync() {
  if (!log_dir_) return Status::Ok();
  return log_dir_->sync();
}

void PartitionLog::simulate_power_loss(double keep_fraction) {
  if (log_dir_) log_dir_->simulate_power_loss(keep_fraction);
}

Result<std::vector<ConsumedRecord>> PartitionLog::fetch(
    const FetchSpec& spec) const {
  UniqueLock lock(mutex_);

  if (spec.offset > next_offset_) {
    return Status::OutOfRange("fetch offset " + std::to_string(spec.offset) +
                              " beyond end offset " +
                              std::to_string(next_offset_));
  }

  // Long-poll while the caller is at the log end.
  if (spec.offset == next_offset_ && spec.max_wait > Duration::zero()) {
    data_available_.wait_for(lock, spec.max_wait,
                             [&]() PE_NO_THREAD_SAFETY_ANALYSIS {
                               return next_offset_ > spec.offset;
                             });
  }

  const std::uint64_t start =
      entries_.empty() ? next_offset_ : entries_.front().offset;
  if (spec.offset < start) {
    // Cold path: the hot window no longer holds this offset. With a
    // durable tier the records are still on disk (the durable log also
    // holds the hot window, so a cold fetch never has to stitch tiers) —
    // serve zero-copy views into the mmap'd segments.
    if (log_dir_) {
      return log_dir_->fetch(spec.offset, spec.max_records, spec.max_bytes);
    }
    return Status::OutOfRange("fetch offset " + std::to_string(spec.offset) +
                              " below log start " + std::to_string(start));
  }

  std::vector<ConsumedRecord> out;
  std::uint64_t bytes = 0;
  // Dense offsets => direct index from the deque front. Copying the record
  // is zero-copy for the payload (shared view); only the key string and
  // the fixed-size coordinates are duplicated per consumer.
  const std::size_t first = spec.offset - start;
  out.reserve(std::min(entries_.size() - first, spec.max_records));
  for (std::size_t i = first; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (out.size() >= spec.max_records) break;
    if (!out.empty() && bytes + e.record.wire_size() > spec.max_bytes) break;
    ConsumedRecord cr;
    cr.offset = e.offset;
    cr.broker_timestamp_ns = e.broker_timestamp_ns;
    cr.record = e.record;
    bytes += e.record.wire_size();
    out.push_back(std::move(cr));
  }
  return out;
}

std::uint64_t PartitionLog::log_start_offset() const {
  MutexLock lock(mutex_);
  if (log_dir_) return log_dir_->start_offset();
  return entries_.empty() ? next_offset_ : entries_.front().offset;
}

std::uint64_t PartitionLog::end_offset() const {
  MutexLock lock(mutex_);
  return next_offset_;
}

std::uint64_t PartitionLog::record_count() const {
  MutexLock lock(mutex_);
  if (log_dir_) return log_dir_->record_count();
  return entries_.size();
}

std::uint64_t PartitionLog::byte_size() const {
  MutexLock lock(mutex_);
  if (log_dir_) return log_dir_->byte_size();
  return bytes_;
}

std::uint64_t PartitionLog::hot_window_bytes() const {
  MutexLock lock(mutex_);
  return bytes_;
}

void PartitionLog::enforce_retention() {
  {
    MutexLock lock(mutex_);
    enforce_retention_locked();
  }
}

void PartitionLog::enforce_retention_locked() {
  if (retention_.max_records > 0) {
    while (entries_.size() > retention_.max_records) {
      add_hot_bytes_locked(
          -static_cast<std::int64_t>(entries_.front().record.wire_size()));
      entries_.pop_front();
    }
  }
  if (retention_.max_bytes > 0) {
    while (entries_.size() > 1 && bytes_ > retention_.max_bytes) {
      add_hot_bytes_locked(
          -static_cast<std::int64_t>(entries_.front().record.wire_size()));
      entries_.pop_front();
    }
  }
  std::uint64_t cutoff_ns = 0;
  if (retention_.max_age > Duration::zero()) {
    // Saturating subtraction: when the clock epoch is younger than
    // max_age, an unsigned wrap would put the cutoff in the far future
    // and age-evict the whole log down to one entry.
    const std::uint64_t now_ns = Clock::now_ns();
    const auto age_ns = static_cast<std::uint64_t>(retention_.max_age.count());
    cutoff_ns = now_ns > age_ns ? now_ns - age_ns : 0;
    while (entries_.size() > 1 &&
           entries_.front().broker_timestamp_ns < cutoff_ns) {
      add_hot_bytes_locked(
          -static_cast<std::int64_t>(entries_.front().record.wire_size()));
      entries_.pop_front();
    }
  }
  // Hot-window cache bound (durable logs only): trim the deque without
  // touching the durable tier — the records stay on disk and cold fetches
  // serve them, so this frees memory without losing data.
  if (log_dir_ && retention_.hot_max_bytes > 0) {
    while (entries_.size() > 1 && bytes_ > retention_.hot_max_bytes) {
      add_hot_bytes_locked(
          -static_cast<std::int64_t>(entries_.front().record.wire_size()));
      entries_.pop_front();
    }
  }
  if (log_dir_) {
    // The durable tier retains at whole-segment granularity and only
    // drops a segment once the rest of the log still satisfies the
    // limits, so it always holds at least as much as the hot window.
    log_dir_->apply_retention(retention_.max_records, retention_.max_bytes,
                              cutoff_ns);
  }
}

std::uint64_t PartitionLog::offset_for_timestamp(std::uint64_t ts_ns) const {
  MutexLock lock(mutex_);
  // The hot window answers when the target is inside it (binary search:
  // broker timestamps are monotone in offset)...
  if (!entries_.empty() && entries_.front().broker_timestamp_ns <= ts_ns) {
    std::size_t lo = 0, hi = entries_.size();
    while (lo < hi) {
      const std::size_t mid = lo + (hi - lo) / 2;
      if (entries_[mid].broker_timestamp_ns < ts_ns) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo == entries_.size() ? next_offset_ : entries_[lo].offset;
  }
  // ...otherwise the answer is at or below the hot window's first record:
  // ask the durable tier, which still holds the older records.
  if (log_dir_) return log_dir_->offset_for_timestamp(ts_ns);
  std::size_t lo = 0, hi = entries_.size();
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (entries_[mid].broker_timestamp_ns < ts_ns) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo == entries_.size() ? next_offset_ : entries_[lo].offset;
}

}  // namespace pe::broker
