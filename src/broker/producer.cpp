#include "broker/producer.h"

namespace pe::broker {

Producer::Producer(std::shared_ptr<Broker> broker,
                   std::shared_ptr<net::Fabric> fabric, net::SiteId site)
    : broker_(std::move(broker)),
      fabric_(std::move(fabric)),
      site_(std::move(site)) {}

Producer::~Producer() {
  if (accumulator_) (void)accumulator_->close();
}

void Producer::enable_batching(BatchConfig config) {
  accumulator_ = std::make_unique<BatchAccumulator>(
      config, [this](const std::string& topic, std::uint32_t partition,
                     std::vector<Record> records) {
        return send_batch(topic, partition, std::move(records)).status();
      });
}

Status Producer::enqueue(const std::string& topic, std::uint32_t partition,
                         Record record) {
  if (!accumulator_) {
    return Status::FailedPrecondition("batching not enabled");
  }
  return accumulator_->add(topic, partition, std::move(record));
}

Status Producer::flush() {
  if (!accumulator_) return Status::Ok();
  return accumulator_->flush();
}

Status Producer::close() {
  if (!accumulator_) return Status::Ok();
  return accumulator_->close();
}

BatchAccumulatorStats Producer::batch_stats() const {
  if (!accumulator_) return {};
  return accumulator_->stats();
}

Status Producer::last_batch_error() const {
  if (!accumulator_) return Status::Ok();
  return accumulator_->last_error();
}

Result<RecordMetadata> Producer::send(const std::string& topic,
                                      Record record) {
  auto partition = broker_->select_partition(topic, record);
  if (!partition.ok()) {
    MutexLock lock(mutex_);
    stats_.send_errors += 1;
    return partition.status();
  }
  return send(topic, partition.value(), std::move(record));
}

Result<RecordMetadata> Producer::send(const std::string& topic,
                                      std::uint32_t partition, Record record) {
  std::vector<Record> batch;
  batch.push_back(std::move(record));
  auto meta = send_batch(topic, partition, std::move(batch));
  return meta;
}

Result<RecordMetadata> Producer::send_batch(const std::string& topic,
                                            std::uint32_t partition,
                                            std::vector<Record> records) {
  if (records.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  std::uint64_t bytes = 0;
  for (const auto& r : records) bytes += r.wire_size();

  auto transfer = fabric_->transfer(site_, broker_->site(), bytes);
  if (!transfer.ok()) {
    MutexLock lock(mutex_);
    stats_.send_errors += 1;
    return transfer.status();
  }

  const auto count = records.size();
  auto offset = broker_->produce(topic, partition, std::move(records), id_);
  if (!offset.ok()) {
    MutexLock lock(mutex_);
    stats_.send_errors += 1;
    return offset.status();
  }

  {
    MutexLock lock(mutex_);
    stats_.records_sent += count;
    stats_.bytes_sent += bytes;
  }

  RecordMetadata meta;
  meta.topic = topic;
  meta.partition = partition;
  meta.offset = offset.value();
  meta.transfer = transfer.value();
  return meta;
}

ProducerStats Producer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace pe::broker
