#include "broker/producer.h"

namespace pe::broker {

Producer::Producer(std::shared_ptr<Broker> broker,
                   std::shared_ptr<net::Fabric> fabric, net::SiteId site)
    : broker_(std::move(broker)),
      fabric_(std::move(fabric)),
      site_(std::move(site)) {}

Result<RecordMetadata> Producer::send(const std::string& topic,
                                      Record record) {
  auto partition = broker_->select_partition(topic, record);
  if (!partition.ok()) {
    MutexLock lock(mutex_);
    stats_.send_errors += 1;
    return partition.status();
  }
  return send(topic, partition.value(), std::move(record));
}

Result<RecordMetadata> Producer::send(const std::string& topic,
                                      std::uint32_t partition, Record record) {
  std::vector<Record> batch;
  batch.push_back(std::move(record));
  auto meta = send_batch(topic, partition, std::move(batch));
  return meta;
}

Result<RecordMetadata> Producer::send_batch(const std::string& topic,
                                            std::uint32_t partition,
                                            std::vector<Record> records) {
  if (records.empty()) {
    return Status::InvalidArgument("empty batch");
  }
  std::uint64_t bytes = 0;
  for (const auto& r : records) bytes += r.wire_size();

  auto transfer = fabric_->transfer(site_, broker_->site(), bytes);
  if (!transfer.ok()) {
    MutexLock lock(mutex_);
    stats_.send_errors += 1;
    return transfer.status();
  }

  const auto count = records.size();
  auto offset = broker_->produce(topic, partition, std::move(records));
  if (!offset.ok()) {
    MutexLock lock(mutex_);
    stats_.send_errors += 1;
    return offset.status();
  }

  {
    MutexLock lock(mutex_);
    stats_.records_sent += count;
    stats_.bytes_sent += bytes;
  }

  RecordMetadata meta;
  meta.topic = topic;
  meta.partition = partition;
  meta.offset = offset.value();
  meta.transfer = transfer.value();
  return meta;
}

ProducerStats Producer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace pe::broker
