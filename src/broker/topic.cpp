#include "broker/topic.h"

#include <functional>

namespace pe::broker {

Topic::Topic(std::string name, TopicConfig config, std::string durable_dir,
             storage::StorageConfig storage)
    : name_(std::move(name)), config_(config) {
  const std::uint32_t n = config_.partitions == 0 ? 1 : config_.partitions;
  partitions_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (durable_dir.empty()) {
      partitions_.push_back(std::make_unique<PartitionLog>(config_.retention));
    } else {
      partitions_.push_back(std::make_unique<PartitionLog>(
          config_.retention, durable_dir + "/p" + std::to_string(i),
          storage));
    }
  }
}

std::uint32_t Topic::select_partition(const Record& record) {
  const auto n = static_cast<std::uint64_t>(partitions_.size());
  if (config_.partitioner == PartitionerKind::kKeyHash &&
      !record.key.empty()) {
    return static_cast<std::uint32_t>(std::hash<std::string>{}(record.key) %
                                      n);
  }
  return static_cast<std::uint32_t>(
      round_robin_.fetch_add(1, std::memory_order_relaxed) % n);
}

PartitionLog* Topic::partition(std::uint32_t p) {
  if (p >= partitions_.size()) return nullptr;
  return partitions_[p].get();
}

const PartitionLog* Topic::partition(std::uint32_t p) const {
  if (p >= partitions_.size()) return nullptr;
  return partitions_[p].get();
}

std::uint64_t Topic::total_records() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->record_count();
  return total;
}

std::uint64_t Topic::total_bytes() const {
  std::uint64_t total = 0;
  for (const auto& p : partitions_) total += p->byte_size();
  return total;
}

void Topic::set_hot_bytes_counter(
    std::shared_ptr<std::atomic<std::int64_t>> c) {
  for (const auto& p : partitions_) p->set_hot_bytes_counter(c);
}

}  // namespace pe::broker
