#include "broker/batch_accumulator.h"

#include <algorithm>

namespace pe::broker {
namespace {

/// Wall-clock duration for an emulated linger (same contract as
/// Clock::sleep_scaled: emulated / time_scale).
Duration wall_linger(Duration linger) {
  const double scale = Clock::time_scale();
  if (scale <= 0.0) return linger;
  return std::chrono::duration_cast<Duration>(linger / scale);
}

// The flusher re-checks deadlines at least this often even when nothing
// new is armed, so a time-scale change mid-linger cannot stall a batch
// for more than one slice.
constexpr auto kMaxFlusherSlice = std::chrono::milliseconds(50);

}  // namespace

BatchAccumulator::BatchAccumulator(BatchConfig config, FlushFn flush)
    : config_(config), flush_(std::move(flush)) {
  if (config_.linger > Duration::zero()) {
    flusher_ = std::thread([this] { flusher_loop(); });
  }
}

BatchAccumulator::~BatchAccumulator() {
  // Destructor flush: errors already landed in stats_/last_error_.
  (void)close();
}

Status BatchAccumulator::add(const std::string& topic, std::uint32_t partition,
                             Record record) {
  Key key{topic, partition};
  std::vector<Record> due;
  {
    MutexLock lock(mutex_);
    if (closed_) {
      return Status::FailedPrecondition("batch accumulator is closed");
    }
    auto& pending = pending_[key];
    if (pending.records.empty()) {
      pending.deadline = Clock::now() + wall_linger(config_.linger);
      ++arm_epoch_;
      wake_.notify_all();
    }
    pending.bytes += record.wire_size();
    pending.records.push_back(std::move(record));
    ++stats_.records_enqueued;
    if (config_.linger <= Duration::zero() ||
        pending.bytes >= config_.batch_max_bytes) {
      due = std::move(pending.records);
      pending_.erase(key);
    }
  }
  if (due.empty()) return Status::Ok();
  return flush_batch(key, std::move(due), Trigger::kSize);
}

Status BatchAccumulator::flush() {
  std::vector<Due> all;
  {
    MutexLock lock(mutex_);
    all = take_all_locked();
  }
  Status first = Status::Ok();
  for (auto& d : all) {
    auto s = flush_batch(d.key, std::move(d.records), Trigger::kManual);
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

Status BatchAccumulator::close() {
  std::vector<Due> all;
  bool join = false;
  {
    MutexLock lock(mutex_);
    if (!closed_) {
      closed_ = true;
      stop_ = true;
      join = true;
      wake_.notify_all();
    }
    all = take_all_locked();
  }
  if (join && flusher_.joinable()) flusher_.join();
  Status first = Status::Ok();
  for (auto& d : all) {
    auto s = flush_batch(d.key, std::move(d.records), Trigger::kClose);
    if (first.ok() && !s.ok()) first = s;
  }
  return first;
}

BatchAccumulatorStats BatchAccumulator::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

Status BatchAccumulator::last_error() const {
  MutexLock lock(mutex_);
  return last_error_;
}

void BatchAccumulator::flusher_loop() {
  while (true) {
    std::vector<Due> due;
    {
      UniqueLock lock(mutex_);
      if (stop_) return;
      const auto now = Clock::now();
      auto next = TimePoint::max();
      for (const auto& [key, pending] : pending_) {
        next = std::min(next, pending.deadline);
      }
      if (next > now) {
        Duration wait = pending_.empty()
                            ? Duration(kMaxFlusherSlice)
                            : std::min<Duration>(next - now, kMaxFlusherSlice);
        const std::uint64_t epoch = arm_epoch_;
        wake_.wait_for(lock, wait,
                       [&] { return stop_ || arm_epoch_ != epoch; });
        continue;  // re-plan: stop, new arm, or deadline reached
      }
      for (auto it = pending_.begin(); it != pending_.end();) {
        if (it->second.deadline <= now) {
          due.push_back(Due{it->first, std::move(it->second.records)});
          it = pending_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& d : due) {
      // Linger-triggered flush has no caller to return to: the outcome is
      // recorded in stats_/last_error_ by flush_batch.
      (void)flush_batch(d.key, std::move(d.records), Trigger::kTime);
    }
  }
}

Status BatchAccumulator::flush_batch(const Key& key,
                                     std::vector<Record> records,
                                     Trigger trigger) {
  if (records.empty()) return Status::Ok();
  const auto count = static_cast<std::uint64_t>(records.size());
  Status s = flush_(key.first, key.second, std::move(records));
  MutexLock lock(mutex_);
  ++stats_.batches_flushed;
  switch (trigger) {
    case Trigger::kSize: ++stats_.flushes_on_size; break;
    case Trigger::kTime: ++stats_.flushes_on_time; break;
    case Trigger::kClose: ++stats_.flushes_on_close; break;
    case Trigger::kManual: ++stats_.flushes_manual; break;
  }
  if (s.ok()) {
    stats_.records_flushed += count;
  } else {
    ++stats_.flush_errors;
    stats_.records_dropped += count;
    last_error_ = s;
  }
  return s;
}

std::vector<BatchAccumulator::Due> BatchAccumulator::take_all_locked() {
  std::vector<Due> all;
  all.reserve(pending_.size());
  for (auto& [key, pending] : pending_) {
    if (!pending.records.empty()) {
      all.push_back(Due{key, std::move(pending.records)});
    }
  }
  pending_.clear();
  return all;
}

}  // namespace pe::broker
