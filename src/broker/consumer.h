// Consumer client.
//
// Supports Kafka-style group subscription (partitions assigned by the
// broker's GroupCoordinator, rebalancing on membership change) or manual
// assignment. poll() fetches from assigned partitions round-robin and
// charges fetched bytes to the broker->consumer fabric link.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/status.h"
#include "broker/broker.h"
#include "network/fabric.h"

namespace pe::broker {

/// Where to start when a partition has no committed offset.
enum class OffsetReset {
  kEarliest,
  kLatest,
};

struct ConsumerConfig {
  OffsetReset offset_reset = OffsetReset::kEarliest;
  std::size_t max_poll_records = 512;
  std::uint64_t fetch_max_bytes = 8ull << 20;
  /// Kafka-style at-least-once auto-commit: positions delivered by one
  /// poll() are committed at the START of the next poll() (and on clean
  /// close()), never before the application had a chance to process them.
  bool auto_commit = true;
};

struct ConsumerStats {
  std::uint64_t records_received = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t polls = 0;
  std::uint64_t rebalances = 0;
  /// Polls cut short by a broker-side fetch throttle.
  std::uint64_t throttled_polls = 0;
};

class Consumer {
 public:
  Consumer(std::shared_ptr<Broker> broker, std::shared_ptr<net::Fabric> fabric,
           net::SiteId site, std::string group, ConsumerConfig config = {});
  ~Consumer();

  Consumer(const Consumer&) = delete;
  Consumer& operator=(const Consumer&) = delete;

  const std::string& id() const { return id_; }
  const std::string& group() const { return group_; }

  /// Group subscription; partitions are assigned by the coordinator.
  Status subscribe(const std::vector<std::string>& topics);

  /// Manual assignment (no group coordination).
  Status assign(std::vector<TopicPartition> partitions);

  /// Fetches up to config.max_poll_records across assigned partitions,
  /// waiting up to `timeout` for data. Returns an empty vector on timeout.
  std::vector<ConsumedRecord> poll(Duration timeout);

  /// Like poll(), additionally reporting fetch-side throttling: when the
  /// broker refused a fetch because this client's fetch quota is in debt,
  /// `*throttle` is the Status::Throttled (carrying the broker's
  /// retry-after hint) and the poll returns early instead of burning the
  /// timeout against a broker that already said no. OK otherwise.
  std::vector<ConsumedRecord> poll(Duration timeout, Status* throttle);

  /// Current assignment (after any pending rebalance is applied on poll).
  std::vector<TopicPartition> assignment() const;

  /// Next offset this consumer will read from a partition.
  Result<std::uint64_t> position(const TopicPartition& tp) const;

  Status seek(const TopicPartition& tp, std::uint64_t offset);

  /// Repositions to the first record at/after a broker timestamp
  /// (offsetsForTimes + seek in one call).
  Status seek_to_timestamp(const TopicPartition& tp, std::uint64_t ts_ns);

  /// Backpressure: paused partitions stay assigned but are skipped by
  /// poll() until resumed (Kafka pause/resume semantics).
  Status pause(const TopicPartition& tp);
  Status resume(const TopicPartition& tp);
  bool paused(const TopicPartition& tp) const;

  /// Commits current positions for all assigned partitions.
  Status commit();

  /// Leaves the group (idempotent); called by the destructor. With
  /// auto_commit, first commits positions delivered by the last poll.
  void close();

  /// Test/chaos hook: drop dead WITHOUT committing or leaving the group,
  /// as a crashed process would. Delivered-but-uncommitted records are
  /// redelivered to whichever member inherits the partitions.
  void crash();

  ConsumerStats stats() const;

 private:
  /// Re-reads the coordinator assignment if the generation moved.
  void maybe_rebalance();
  std::uint64_t initial_position(const TopicPartition& tp) const;

  std::shared_ptr<Broker> broker_;
  std::shared_ptr<net::Fabric> fabric_;
  const net::SiteId site_;
  const std::string group_;
  const std::string id_;
  const ConsumerConfig config_;

  bool subscribed_ = false;
  std::vector<std::string> subscribed_topics_;
  bool closed_ = false;
  /// True when the previous poll() delivered records whose positions have
  /// not been auto-committed yet.
  bool uncommitted_delivery_ = false;
  std::uint64_t generation_ = 0;
  std::vector<TopicPartition> assignment_;
  std::map<TopicPartition, std::uint64_t> positions_;
  std::set<TopicPartition> paused_;
  std::size_t next_partition_index_ = 0;
  ConsumerStats stats_;
};

}  // namespace pe::broker
