#include "broker/group_coordinator.h"

#include <algorithm>

#include "common/clock.h"

namespace pe::broker {

GroupCoordinator::GroupCoordinator(PartitionCountFn partition_count_fn)
    : partition_count_fn_(std::move(partition_count_fn)) {}

Result<GroupAssignment> GroupCoordinator::join(
    const std::string& group, const std::string& member_id,
    const std::vector<std::string>& topics) {
  if (topics.empty()) {
    return Status::InvalidArgument("member must subscribe to >= 1 topic");
  }
  // Resolve partition counts BEFORE taking the coordinator lock: the
  // broker-backed callback acquires the broker registry lock, and calling
  // it under mutex_ inverts the Broker -> Coordinator order (the
  // lock-order detector aborts on that; regression test in
  // tests/broker/group_coordinator_test.cpp).
  std::map<std::string, std::uint32_t> counts;
  for (const auto& t : topics) {
    const std::uint32_t parts = partition_count_fn_(t);
    if (parts == 0) {
      return Status::NotFound("unknown topic '" + t + "'");
    }
    counts[t] = parts;
  }
  MutexLock lock(mutex_);
  for (const auto& [t, parts] : counts) topic_counts_[t] = parts;
  Group& g = groups_[group];
  evict_expired_locked(g);
  g.members[member_id] = Member{topics, Clock::now()};
  rebalance_locked(g);
  return GroupAssignment{g.generation, g.assignments[member_id]};
}

void GroupCoordinator::set_session_timeout(Duration timeout) {
  MutexLock lock(mutex_);
  session_timeout_ = timeout;
}

Status GroupCoordinator::heartbeat(const std::string& group,
                                   const std::string& member_id) {
  MutexLock lock(mutex_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return Status::NotFound("unknown group " + group);
  auto mit = git->second.members.find(member_id);
  if (mit == git->second.members.end()) {
    return Status::NotFound("member " + member_id + " not in group " + group);
  }
  mit->second.last_heartbeat = Clock::now();
  evict_expired_locked(git->second);
  return Status::Ok();
}

void GroupCoordinator::evict_expired_locked(Group& g) {
  if (session_timeout_ <= Duration::zero()) return;
  const auto cutoff =
      Clock::now() - std::chrono::duration_cast<Duration>(
                         session_timeout_ / Clock::time_scale());
  bool changed = false;
  for (auto it = g.members.begin(); it != g.members.end();) {
    if (it->second.last_heartbeat < cutoff) {
      g.assignments.erase(it->first);
      it = g.members.erase(it);
      changed = true;
    } else {
      ++it;
    }
  }
  if (changed) rebalance_locked(g);
}

Status GroupCoordinator::leave(const std::string& group,
                               const std::string& member_id) {
  MutexLock lock(mutex_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return Status::NotFound("unknown group " + group);
  Group& g = git->second;
  if (g.members.erase(member_id) == 0) {
    return Status::NotFound("member " + member_id + " not in group " + group);
  }
  g.assignments.erase(member_id);
  rebalance_locked(g);
  return Status::Ok();
}

Result<GroupAssignment> GroupCoordinator::assignment(
    const std::string& group, const std::string& member_id) const {
  MutexLock lock(mutex_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return Status::NotFound("unknown group " + group);
  const Group& g = git->second;
  auto mit = g.assignments.find(member_id);
  if (mit == g.assignments.end()) {
    return Status::NotFound("member " + member_id + " not in group " + group);
  }
  return GroupAssignment{g.generation, mit->second};
}

std::uint64_t GroupCoordinator::generation(const std::string& group) const {
  MutexLock lock(mutex_);
  auto git = groups_.find(group);
  return git == groups_.end() ? 0 : git->second.generation;
}

std::vector<std::string> GroupCoordinator::members(
    const std::string& group) const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  auto git = groups_.find(group);
  if (git == groups_.end()) return out;
  for (const auto& [id, _] : git->second.members) out.push_back(id);
  return out;
}

Status GroupCoordinator::commit_offset(const std::string& group,
                                       const TopicPartition& tp,
                                       std::uint64_t offset) {
  CommitListener listener;
  {
    MutexLock lock(mutex_);
    // Creates the group implicitly: manually-assigned consumers may commit
    // under a group id without ever joining (matches Kafka).
    groups_[group].committed[tp] = offset;
    listener = commit_listener_;
  }
  // Outside the lock: the durable broker's listener appends to the
  // offsets commit log, which takes the storage mutex.
  if (listener) listener(group, tp, offset);
  return Status::Ok();
}

void GroupCoordinator::set_commit_listener(CommitListener listener) {
  MutexLock lock(mutex_);
  commit_listener_ = std::move(listener);
}

void GroupCoordinator::restore_offset(const std::string& group,
                                      const TopicPartition& tp,
                                      std::uint64_t offset) {
  MutexLock lock(mutex_);
  groups_[group].committed[tp] = offset;
}

void GroupCoordinator::reset() {
  MutexLock lock(mutex_);
  groups_.clear();
  topic_counts_.clear();
}

std::optional<std::uint64_t> GroupCoordinator::committed_offset(
    const std::string& group, const TopicPartition& tp) const {
  MutexLock lock(mutex_);
  auto git = groups_.find(group);
  if (git == groups_.end()) return std::nullopt;
  auto cit = git->second.committed.find(tp);
  if (cit == git->second.committed.end()) return std::nullopt;
  return cit->second;
}

void GroupCoordinator::rebalance_locked(Group& g) {
  g.generation += 1;
  g.assignments.clear();
  if (g.members.empty()) return;

  // Range assignor, per topic: members subscribed to the topic get
  // contiguous partition ranges, remainder to the first members.
  std::set<std::string> all_topics;
  for (const auto& [_, member] : g.members) {
    all_topics.insert(member.topics.begin(), member.topics.end());
  }
  for (const auto& topic : all_topics) {
    std::vector<std::string> subscribers;
    for (const auto& [id, member] : g.members) {
      if (std::find(member.topics.begin(), member.topics.end(), topic) !=
          member.topics.end()) {
        subscribers.push_back(id);
      }
    }
    std::sort(subscribers.begin(), subscribers.end());
    // Cached at join time; never call partition_count_fn_ here — this
    // method runs under mutex_ and the callback takes broker locks.
    const auto pit = topic_counts_.find(topic);
    const std::uint32_t parts =
        pit == topic_counts_.end() ? 0 : pit->second;
    const auto m = static_cast<std::uint32_t>(subscribers.size());
    if (m == 0 || parts == 0) continue;
    const std::uint32_t base = parts / m;
    const std::uint32_t extra = parts % m;
    std::uint32_t next = 0;
    for (std::uint32_t i = 0; i < m; ++i) {
      const std::uint32_t take = base + (i < extra ? 1 : 0);
      for (std::uint32_t k = 0; k < take; ++k) {
        g.assignments[subscribers[i]].push_back(TopicPartition{topic, next++});
      }
      // Members with zero partitions still get an (empty) entry so
      // assignment() succeeds for them.
      g.assignments.try_emplace(subscribers[i]);
    }
  }
  // Members whose topics all vanished still need an entry.
  for (const auto& [id, _] : g.members) g.assignments.try_emplace(id);
}

}  // namespace pe::broker
