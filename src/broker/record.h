// Broker record types.
//
// A Record is what producers send: an optional key (used for partitioning),
// an opaque byte payload, and a client timestamp. A ConsumedRecord is what
// consumers receive back: the record plus its log coordinates
// (topic/partition/offset) and the broker append timestamp.
//
// Zero-copy data plane: a Payload is an immutable byte view plus a
// type-erased owner that keeps the backing storage alive — a heap Bytes
// buffer for in-memory records, or an mmap'd segment region for records
// served from the durable commit log. Copying a Record — and therefore
// fetching it, fanning it out to N consumer groups, retrying a send, or
// dead-lettering it — only bumps a refcount; the payload bytes are stored
// exactly once, at append.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/serialize.h"

namespace pe::broker {

/// Per-record framing overhead charged on the wire (key/value lengths,
/// offsets, timestamps, CRC) — approximates Kafka's record header cost.
inline constexpr std::uint64_t kRecordWireOverheadBytes = 64;

/// Shared, immutable byte payload: (owner, pointer, length). Construction
/// from a Bytes buffer takes ownership with a single move (no copy of the
/// heap storage); every subsequent copy is a shared view. `view()` builds
/// a payload aliasing memory owned by something else entirely — e.g. an
/// mmap'd commit-log segment — which stays mapped for as long as any view
/// of it is alive, even after retention unlinks the file.
class Payload {
 public:
  Payload() = default;
  Payload(Bytes bytes) {  // NOLINT(google-explicit-constructor)
    auto owned = std::make_shared<const Bytes>(std::move(bytes));
    data_ = owned->data();
    size_ = owned->size();
    owner_ = std::move(owned);
  }
  Payload(std::shared_ptr<const Bytes> bytes) {  // NOLINT
    if (bytes) {
      data_ = bytes->data();
      size_ = bytes->size();
      owner_ = std::move(bytes);
    }
  }

  /// Aliasing view: `owner` keeps `[data, data+size)` valid.
  static Payload view(std::shared_ptr<const void> owner,
                      const std::uint8_t* data, std::size_t size) {
    Payload p;
    p.owner_ = std::move(owner);
    p.data_ = data;
    p.size_ = size;
    return p;
  }

  ByteSpan span() const { return {data_, size_}; }
  operator ByteSpan() const { return span(); }  // NOLINT

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const std::uint8_t* data() const { return data_; }
  std::uint8_t operator[](std::size_t i) const { return data_[i]; }
  const std::uint8_t* begin() const { return data_; }
  const std::uint8_t* end() const { return data_ + size_; }

  /// Materializes an owned copy (for callers that must mutate or outlive
  /// the owner without holding it).
  Bytes to_bytes() const { return Bytes(data_, data_ + size_); }

  /// The owning pointer itself — lets call sites share one payload across
  /// many records without re-wrapping, and tests assert aliasing.
  const std::shared_ptr<const void>& shared() const { return owner_; }
  long use_count() const { return owner_.use_count(); }

  friend bool operator==(const Payload& a, const Payload& b) {
    return (a.data_ == b.data_ && a.size_ == b.size_) ||
           std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const Bytes& a, const Payload& b) { return b == a; }

 private:
  std::shared_ptr<const void> owner_;
  const std::uint8_t* data_ = nullptr;
  std::size_t size_ = 0;
};

struct Record {
  std::string key;
  Payload value;
  std::uint64_t client_timestamp_ns = 0;

  std::uint64_t wire_size() const {
    return key.size() + value.size() + kRecordWireOverheadBytes;
  }
};

struct ConsumedRecord {
  std::string topic;
  std::uint32_t partition = 0;
  std::uint64_t offset = 0;
  std::uint64_t broker_timestamp_ns = 0;
  Record record;
};

}  // namespace pe::broker
