// Broker record types.
//
// A Record is what producers send: an optional key (used for partitioning),
// an opaque byte payload, and a client timestamp. A ConsumedRecord is what
// consumers receive back: the record plus its log coordinates
// (topic/partition/offset) and the broker append timestamp.
//
// Zero-copy data plane: the payload bytes live behind a
// std::shared_ptr<const Bytes> (Payload) and are IMMUTABLE once a record
// has been appended to a partition log. Copying a Record — and therefore
// fetching it, fanning it out to N consumer groups, retrying a send, or
// dead-lettering it — only bumps a refcount; the payload bytes are stored
// exactly once, at append.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

#include "common/serialize.h"

namespace pe::broker {

/// Per-record framing overhead charged on the wire (key/value lengths,
/// offsets, timestamps, CRC) — approximates Kafka's record header cost.
inline constexpr std::uint64_t kRecordWireOverheadBytes = 64;

/// Shared, immutable byte payload. Construction takes ownership of a Bytes
/// buffer (one allocation, no copy of the heap storage thanks to vector
/// move); every subsequent copy is a shared view. The implicit conversion
/// to `const Bytes&` keeps existing readers (codec decode, serialization)
/// source-compatible.
class Payload {
 public:
  Payload() = default;
  Payload(Bytes bytes)  // NOLINT(google-explicit-constructor)
      : data_(std::make_shared<const Bytes>(std::move(bytes))) {}
  Payload(std::shared_ptr<const Bytes> data)  // NOLINT
      : data_(std::move(data)) {}

  /// The underlying bytes (a shared empty buffer when unset).
  const Bytes& bytes() const { return data_ ? *data_ : empty_bytes(); }
  operator const Bytes&() const { return bytes(); }  // NOLINT

  std::size_t size() const { return data_ ? data_->size() : 0; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const { return bytes().data(); }
  std::uint8_t operator[](std::size_t i) const { return bytes()[i]; }
  Bytes::const_iterator begin() const { return bytes().begin(); }
  Bytes::const_iterator end() const { return bytes().end(); }

  /// The owning pointer itself — lets call sites share one payload across
  /// many records without re-wrapping.
  const std::shared_ptr<const Bytes>& shared() const { return data_; }
  long use_count() const { return data_.use_count(); }

  friend bool operator==(const Payload& a, const Payload& b) {
    return a.data_ == b.data_ || a.bytes() == b.bytes();
  }
  friend bool operator==(const Payload& a, const Bytes& b) {
    return a.bytes() == b;
  }
  friend bool operator==(const Bytes& a, const Payload& b) {
    return a == b.bytes();
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<const Bytes> data_;
};

struct Record {
  std::string key;
  Payload value;
  std::uint64_t client_timestamp_ns = 0;

  std::uint64_t wire_size() const {
    return key.size() + value.size() + kRecordWireOverheadBytes;
  }
};

struct ConsumedRecord {
  std::string topic;
  std::uint32_t partition = 0;
  std::uint64_t offset = 0;
  std::uint64_t broker_timestamp_ns = 0;
  Record record;
};

}  // namespace pe::broker
