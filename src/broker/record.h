// Broker record types.
//
// A Record is what producers send: an optional key (used for partitioning),
// an opaque byte payload, and a client timestamp. A ConsumedRecord is what
// consumers receive back: the record plus its log coordinates
// (topic/partition/offset) and the broker append timestamp.
#pragma once

#include <cstdint>
#include <string>

#include "common/serialize.h"

namespace pe::broker {

/// Per-record framing overhead charged on the wire (key/value lengths,
/// offsets, timestamps, CRC) — approximates Kafka's record header cost.
inline constexpr std::uint64_t kRecordWireOverheadBytes = 64;

struct Record {
  std::string key;
  Bytes value;
  std::uint64_t client_timestamp_ns = 0;

  std::uint64_t wire_size() const {
    return key.size() + value.size() + kRecordWireOverheadBytes;
  }
};

struct ConsumedRecord {
  std::string topic;
  std::uint32_t partition = 0;
  std::uint64_t offset = 0;
  std::uint64_t broker_timestamp_ns = 0;
  Record record;
};

}  // namespace pe::broker
