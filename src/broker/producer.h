// Producer client.
//
// Attached to a fabric site; every send charges the serialized payload to
// the link between the producer's site and the broker's site before the
// records are appended. send_batch models Kafka producer batching: the
// whole batch crosses the network as one transfer (one propagation delay),
// which is what makes batching pay off over the WAN.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/ids.h"
#include "common/status.h"
#include "broker/batch_accumulator.h"
#include "broker/broker.h"
#include "common/mutex.h"
#include "network/fabric.h"

namespace pe::broker {

/// Where a sent record landed, plus what the network charged for it.
struct RecordMetadata {
  std::string topic;
  std::uint32_t partition = 0;
  std::uint64_t offset = 0;
  net::TransferResult transfer;
};

struct ProducerStats {
  std::uint64_t records_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t send_errors = 0;
};

class Producer {
 public:
  Producer(std::shared_ptr<Broker> broker, std::shared_ptr<net::Fabric> fabric,
           net::SiteId site);
  ~Producer();

  /// Sends one record; partition chosen by the topic's partitioner.
  Result<RecordMetadata> send(const std::string& topic, Record record);

  /// Sends one record to an explicit partition.
  Result<RecordMetadata> send(const std::string& topic,
                              std::uint32_t partition, Record record);

  /// Sends a batch to an explicit partition as a single network transfer.
  /// Returns metadata of the *first* record in the batch.
  Result<RecordMetadata> send_batch(const std::string& topic,
                                    std::uint32_t partition,
                                    std::vector<Record> records);

  // --- batching path ---
  /// Installs a batching accumulator: subsequent enqueue() calls coalesce
  /// records per partition and push them through send_batch when the size
  /// or linger trigger fires. Call before the first enqueue().
  void enable_batching(BatchConfig config);
  /// Buffers one record for batched delivery (requires enable_batching).
  /// An error status is the synchronous outcome of a size-triggered flush;
  /// linger-triggered failures surface via batch_stats()/last_batch_error.
  Status enqueue(const std::string& topic, std::uint32_t partition,
                 Record record);
  /// Flushes all batches currently buffered.
  Status flush();
  /// Flushes remaining batches and stops the background flusher.
  Status close();

  const net::SiteId& site() const { return site_; }
  /// Client id presented to the broker's admission control.
  const std::string& id() const { return id_; }
  ProducerStats stats() const;
  /// Accumulator stats; zeroes when batching is not enabled.
  BatchAccumulatorStats batch_stats() const;
  Status last_batch_error() const;

 private:
  std::shared_ptr<Broker> broker_;
  std::shared_ptr<net::Fabric> fabric_;
  const net::SiteId site_;
  const std::string id_ = next_producer_id();
  mutable Mutex mutex_{"broker.producer"};
  ProducerStats stats_ PE_GUARDED_BY(mutex_);
  // Set once by enable_batching before any enqueue; the accumulator is
  // internally synchronized.
  std::unique_ptr<BatchAccumulator> accumulator_;
};

}  // namespace pe::broker
