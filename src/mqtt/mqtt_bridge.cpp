#include "mqtt/mqtt_bridge.h"

#include "common/logging.h"

namespace pe::mqtt {

MqttKafkaBridge::MqttKafkaBridge(std::shared_ptr<MqttBroker> mqtt,
                                 std::shared_ptr<broker::Broker> kafka,
                                 std::shared_ptr<net::Fabric> fabric,
                                 net::SiteId site, BridgeConfig config)
    : mqtt_(std::move(mqtt)),
      kafka_(std::move(kafka)),
      fabric_(std::move(fabric)),
      site_(std::move(site)),
      config_(std::move(config)) {}

MqttKafkaBridge::~MqttKafkaBridge() { shutdown(); }

Status MqttKafkaBridge::start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (!kafka_->has_topic(config_.kafka_topic)) {
    return Status::NotFound("kafka topic '" + config_.kafka_topic +
                            "' does not exist");
  }
  if (!valid_filter(config_.mqtt_filter)) {
    return Status::InvalidArgument("invalid mqtt filter");
  }
  client_ = std::make_unique<MqttClient>(mqtt_, fabric_, site_,
                                         "bridge-" + config_.kafka_topic);
  if (auto c = client_->connect(); !c.ok()) return c.status();
  if (auto s = client_->subscribe(config_.mqtt_filter); !s.ok()) return s;
  producer_ = std::make_unique<broker::Producer>(kafka_, fabric_, site_);
  running_.store(true);
  thread_ = std::thread([this] { run(); });
  return Status::Ok();
}

void MqttKafkaBridge::run() {
  while (running_.load(std::memory_order_acquire)) {
    auto messages = client_->poll(64);
    if (!messages.ok()) {
      errors_.fetch_add(1);
      Clock::sleep_scaled(config_.poll_interval);
      continue;
    }
    for (auto& m : messages.value()) {
      broker::Record record;
      record.key = m.topic;  // keeps a device's stream in one partition
      // Moves the MQTT payload buffer into the broker's shared immutable
      // payload — the bytes cross the bridge without being copied.
      record.value = std::move(m.payload);
      record.client_timestamp_ns = m.publish_ns;
      auto meta = producer_->send(config_.kafka_topic, std::move(record));
      if (meta.ok()) {
        forwarded_.fetch_add(1);
      } else {
        errors_.fetch_add(1);
        PE_LOG_WARN("bridge forward failed: "
                    << meta.status().to_string());
      }
    }
    if (messages.value().empty()) {
      Clock::sleep_scaled(config_.poll_interval);
    }
  }
}

void MqttKafkaBridge::shutdown() {
  if (!running_.exchange(false)) {
    return;
  }
  if (thread_.joinable()) thread_.join();
  if (client_) (void)client_->disconnect();
}

}  // namespace pe::mqtt
