// Site-attached MQTT client: charges every payload to the fabric link
// between the client's site and the broker's site, like the Kafka-model
// clients do. Intended for constrained edge devices (QoS 0/1, tiny
// per-message state, no offsets).
#pragma once

#include <memory>
#include <string>

#include "mqtt/mqtt_broker.h"
#include "network/fabric.h"

namespace pe::mqtt {

class MqttClient {
 public:
  MqttClient(std::shared_ptr<MqttBroker> broker,
             std::shared_ptr<net::Fabric> fabric, net::SiteId site,
             std::string client_id)
      : broker_(std::move(broker)),
        fabric_(std::move(fabric)),
        site_(std::move(site)),
        client_id_(std::move(client_id)) {}

  ~MqttClient() {
    if (connected_) (void)disconnect();
  }

  MqttClient(const MqttClient&) = delete;
  MqttClient& operator=(const MqttClient&) = delete;

  const std::string& client_id() const { return client_id_; }

  Result<bool> connect(SessionOptions options = {}) {
    // CONNECT control packet: small fixed cost on the wire.
    if (auto t = fabric_->transfer(site_, broker_->site(), 64); !t.ok()) {
      return t.status();
    }
    auto resumed = broker_->connect(client_id_, std::move(options));
    if (resumed.ok()) connected_ = true;
    return resumed;
  }

  Status disconnect() {
    connected_ = false;
    (void)fabric_->transfer(site_, broker_->site(), 16);
    return broker_->disconnect(client_id_);
  }

  /// Simulates an unclean death (network loss / battery): fires the will.
  Status die() {
    connected_ = false;
    return broker_->drop(client_id_);
  }

  Status subscribe(const std::string& filter,
                   QoS max_qos = QoS::kAtLeastOnce) {
    if (auto t = fabric_->transfer(site_, broker_->site(),
                                   filter.size() + 8);
        !t.ok()) {
      return t.status();
    }
    return broker_->subscribe(client_id_, filter, max_qos);
  }

  Status unsubscribe(const std::string& filter) {
    return broker_->unsubscribe(client_id_, filter);
  }

  Status publish(Message message) {
    const std::uint64_t bytes =
        message.topic.size() + message.payload.size() + 8;
    if (auto t = fabric_->transfer(site_, broker_->site(), bytes); !t.ok()) {
      return t.status();
    }
    return broker_->publish(std::move(message));
  }

  /// Receives pending deliveries; QoS-1 messages are acknowledged
  /// automatically after this call returns them (auto_ack true) or must
  /// be acked manually.
  Result<std::vector<Message>> poll(std::size_t max = 64,
                                    bool auto_ack = true) {
    auto messages = broker_->poll(client_id_, max);
    if (!messages.ok()) return messages;
    std::uint64_t bytes = 0;
    for (const auto& m : messages.value()) {
      bytes += m.topic.size() + m.payload.size() + 8;
    }
    if (bytes > 0) {
      if (auto t = fabric_->transfer(broker_->site(), site_, bytes);
          !t.ok()) {
        return t.status();
      }
    }
    if (auto_ack) {
      for (const auto& m : messages.value()) {
        if (m.qos == QoS::kAtLeastOnce) {
          (void)broker_->ack(client_id_, m.packet_id);
        }
      }
    }
    return messages;
  }

  Status ack(std::uint64_t packet_id) {
    (void)fabric_->transfer(site_, broker_->site(), 8);
    return broker_->ack(client_id_, packet_id);
  }

 private:
  std::shared_ptr<MqttBroker> broker_;
  std::shared_ptr<net::Fabric> fabric_;
  const net::SiteId site_;
  const std::string client_id_;
  bool connected_ = false;
};

}  // namespace pe::mqtt
