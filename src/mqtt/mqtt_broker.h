// MQTT-model broker: the paper's second brokering plugin.
//
// "Support for further brokering frameworks, e.g., MQTT for
// low-performance and low-power environments, can easily be added"
// (§II-B). This implements the MQTT 3.1.1 *model* (not the wire
// protocol): hierarchical topics with + / # wildcards, QoS 0 (at most
// once) and QoS 1 (at least once with PUBACK-style acknowledgement and
// redelivery), retained messages, persistent sessions with queued
// undelivered messages, and last-will publication on unclean disconnect.
//
// Contrast with the Kafka-model broker (src/broker): MQTT pushes to
// subscribers and keeps no replayable log — lighter state, no offset
// management, suitable for constrained edge devices. The bridge in
// mqtt_bridge.h forwards MQTT ingress into a Kafka-model topic so cloud
// processing keeps its replay/consumer-group semantics.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/serialize.h"
#include "common/status.h"
#include "network/site.h"

namespace pe::mqtt {

enum class QoS : std::uint8_t {
  kAtMostOnce = 0,   // fire and forget
  kAtLeastOnce = 1,  // redelivered until acknowledged
};

struct Message {
  std::string topic;
  Bytes payload;
  QoS qos = QoS::kAtMostOnce;
  bool retain = false;
  std::uint64_t publish_ns = 0;
  /// Broker-assigned id, used to acknowledge QoS-1 deliveries.
  std::uint64_t packet_id = 0;
  /// True when delivered from the retained store on subscribe.
  bool retained_replay = false;
  /// True on QoS-1 redelivery attempts (MQTT DUP flag).
  bool duplicate = false;
};

/// Topic filter matching per MQTT 3.1.1 §4.7: levels split on '/',
/// '+' matches one level, '#' (final level only) matches the rest.
bool topic_matches(const std::string& filter, const std::string& topic);

/// True if the string is a valid topic *filter* (wildcards allowed).
bool valid_filter(const std::string& filter);
/// True if the string is a valid concrete topic name (no wildcards).
bool valid_topic(const std::string& topic);

struct SessionOptions {
  /// Clean session: discard state on disconnect. Persistent sessions keep
  /// subscriptions and queue messages while the client is away.
  bool clean_session = true;
  /// Last-will message published if the session dies uncleanly.
  std::optional<Message> will;
  /// Redelivery timeout for unacknowledged QoS-1 messages.
  Duration ack_timeout = std::chrono::milliseconds(200);
  /// Max queued messages for an offline persistent session (0 = drop all).
  std::size_t offline_queue_limit = 1024;
};

struct BrokerCounters {
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;
  std::uint64_t redelivered = 0;
  std::uint64_t dropped_offline = 0;
  std::uint64_t wills_fired = 0;
};

class MqttBroker {
 public:
  explicit MqttBroker(net::SiteId site);

  const net::SiteId& site() const { return site_; }

  // --- session lifecycle ---
  /// Connects (or resumes) a client session. Returns true when a
  /// persistent session was resumed.
  Result<bool> connect(const std::string& client_id,
                       SessionOptions options = {});
  /// Clean disconnect: no will; persistent sessions keep subscriptions.
  Status disconnect(const std::string& client_id);
  /// Unclean termination: fires the will, same session retention rules.
  Status drop(const std::string& client_id);
  bool connected(const std::string& client_id) const;

  // --- pub/sub ---
  Status subscribe(const std::string& client_id, const std::string& filter,
                   QoS max_qos = QoS::kAtLeastOnce);
  Status unsubscribe(const std::string& client_id,
                     const std::string& filter);
  Status publish(Message message);

  /// Fetches up to `max` pending deliveries for a client. QoS-1 messages
  /// not acknowledged within ack_timeout are redelivered (DUP set).
  Result<std::vector<Message>> poll(const std::string& client_id,
                                    std::size_t max = 64);
  /// Acknowledges a QoS-1 delivery.
  Status ack(const std::string& client_id, std::uint64_t packet_id);

  std::vector<std::string> subscriptions(const std::string& client_id) const;
  std::size_t retained_count() const;
  BrokerCounters counters() const;

 private:
  struct Subscription {
    std::string filter;
    QoS max_qos;
  };
  struct PendingAck {
    Message message;
    TimePoint sent_at;
  };
  struct Session {
    bool connected = false;
    SessionOptions options;
    std::vector<Subscription> subscriptions;
    std::deque<Message> inbox;
    std::map<std::uint64_t, PendingAck> awaiting_ack;
  };

  void route_locked(const Message& message) PE_REQUIRES(mutex_);
  void deliver_locked(Session& session, const Subscription& sub,
                      Message message) PE_REQUIRES(mutex_);

  const net::SiteId site_;
  mutable Mutex mutex_{"mqtt.broker"};
  std::map<std::string, Session> sessions_ PE_GUARDED_BY(mutex_);
  std::map<std::string, Message> retained_
      PE_GUARDED_BY(mutex_);  // topic -> last retained msg
  std::uint64_t next_packet_id_ PE_GUARDED_BY(mutex_) = 1;
  BrokerCounters counters_ PE_GUARDED_BY(mutex_);
};

}  // namespace pe::mqtt
