#include "mqtt/mqtt_broker.h"

#include <algorithm>

#include "common/logging.h"

namespace pe::mqtt {
namespace {

std::vector<std::string> split_levels(const std::string& s) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t slash = s.find('/', start);
    if (slash == std::string::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, slash - start));
    start = slash + 1;
  }
}

}  // namespace

bool topic_matches(const std::string& filter, const std::string& topic) {
  const auto f = split_levels(filter);
  const auto t = split_levels(topic);
  std::size_t i = 0;
  for (; i < f.size(); ++i) {
    if (f[i] == "#") return true;  // matches remaining levels (incl. none)
    if (i >= t.size()) return false;
    if (f[i] == "+") continue;
    if (f[i] != t[i]) return false;
  }
  return i == t.size();
}

bool valid_filter(const std::string& filter) {
  if (filter.empty()) return false;
  const auto levels = split_levels(filter);
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const auto& level = levels[i];
    if (level == "#") {
      if (i + 1 != levels.size()) return false;  // '#' must be last
      continue;
    }
    if (level == "+") continue;
    if (level.find('#') != std::string::npos ||
        level.find('+') != std::string::npos) {
      return false;  // wildcards must occupy a whole level
    }
  }
  return true;
}

bool valid_topic(const std::string& topic) {
  return !topic.empty() && topic.find('#') == std::string::npos &&
         topic.find('+') == std::string::npos;
}

MqttBroker::MqttBroker(net::SiteId site) : site_(std::move(site)) {}

Result<bool> MqttBroker::connect(const std::string& client_id,
                                 SessionOptions options) {
  if (client_id.empty()) {
    return Status::InvalidArgument("empty client id");
  }
  if (options.will && !valid_topic(options.will->topic)) {
    return Status::InvalidArgument("invalid will topic");
  }
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  bool resumed = false;
  if (it != sessions_.end()) {
    if (it->second.connected) {
      return Status::AlreadyExists("client '" + client_id +
                                   "' already connected");
    }
    if (options.clean_session) {
      sessions_.erase(it);
    } else {
      resumed = true;
    }
  }
  Session& session = sessions_[client_id];
  session.connected = true;
  session.options = std::move(options);
  return resumed;
}

Status MqttBroker::disconnect(const std::string& client_id) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end() || !it->second.connected) {
    return Status::NotFound("client '" + client_id + "' not connected");
  }
  if (it->second.options.clean_session) {
    sessions_.erase(it);
  } else {
    it->second.connected = false;
  }
  return Status::Ok();
}

Status MqttBroker::drop(const std::string& client_id) {
  std::optional<Message> will;
  {
    MutexLock lock(mutex_);
    auto it = sessions_.find(client_id);
    if (it == sessions_.end() || !it->second.connected) {
      return Status::NotFound("client '" + client_id + "' not connected");
    }
    will = it->second.options.will;
    if (it->second.options.clean_session) {
      sessions_.erase(it);
    } else {
      it->second.connected = false;
    }
    if (will) counters_.wills_fired += 1;
  }
  if (will) {
    will->publish_ns = Clock::now_ns();
    return publish(std::move(*will));
  }
  return Status::Ok();
}

bool MqttBroker::connected(const std::string& client_id) const {
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  return it != sessions_.end() && it->second.connected;
}

Status MqttBroker::subscribe(const std::string& client_id,
                             const std::string& filter, QoS max_qos) {
  if (!valid_filter(filter)) {
    return Status::InvalidArgument("invalid topic filter '" + filter + "'");
  }
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end() || !it->second.connected) {
    return Status::FailedPrecondition("client '" + client_id +
                                      "' not connected");
  }
  Session& session = it->second;
  auto existing = std::find_if(
      session.subscriptions.begin(), session.subscriptions.end(),
      [&](const Subscription& s) { return s.filter == filter; });
  if (existing != session.subscriptions.end()) {
    existing->max_qos = max_qos;  // re-subscribe updates QoS
  } else {
    session.subscriptions.push_back(Subscription{filter, max_qos});
    existing = std::prev(session.subscriptions.end());
  }
  // Retained messages matching the new filter are replayed immediately.
  for (const auto& [topic, retained] : retained_) {
    if (topic_matches(filter, topic)) {
      Message replay = retained;
      replay.retained_replay = true;
      deliver_locked(session, *existing, std::move(replay));
    }
  }
  return Status::Ok();
}

Status MqttBroker::unsubscribe(const std::string& client_id,
                               const std::string& filter) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown client '" + client_id + "'");
  }
  auto& subs = it->second.subscriptions;
  const auto before = subs.size();
  subs.erase(std::remove_if(subs.begin(), subs.end(),
                            [&](const Subscription& s) {
                              return s.filter == filter;
                            }),
             subs.end());
  if (subs.size() == before) {
    return Status::NotFound("not subscribed to '" + filter + "'");
  }
  return Status::Ok();
}

void MqttBroker::deliver_locked(Session& session, const Subscription& sub,
                                Message message) {
  // Effective QoS = min(publish QoS, subscription max QoS).
  if (static_cast<int>(message.qos) > static_cast<int>(sub.max_qos)) {
    message.qos = sub.max_qos;
  }
  message.packet_id = next_packet_id_++;
  if (!session.connected) {
    if (session.inbox.size() >= session.options.offline_queue_limit) {
      counters_.dropped_offline += 1;
      return;
    }
  }
  session.inbox.push_back(std::move(message));
}

void MqttBroker::route_locked(const Message& message) {
  for (auto& [id, session] : sessions_) {
    // Each matching subscription delivers once; MQTT delivers per
    // overlapping subscription (we use the highest-QoS match once,
    // matching common broker behaviour).
    const Subscription* best = nullptr;
    for (const auto& sub : session.subscriptions) {
      if (!topic_matches(sub.filter, message.topic)) continue;
      if (best == nullptr ||
          static_cast<int>(sub.max_qos) > static_cast<int>(best->max_qos)) {
        best = &sub;
      }
    }
    if (best != nullptr) {
      counters_.delivered += 1;
      deliver_locked(session, *best, message);
    }
  }
}

Status MqttBroker::publish(Message message) {
  if (!valid_topic(message.topic)) {
    return Status::InvalidArgument("invalid publish topic '" +
                                   message.topic + "'");
  }
  MutexLock lock(mutex_);
  counters_.published += 1;
  if (message.publish_ns == 0) message.publish_ns = Clock::now_ns();
  if (message.retain) {
    if (message.payload.empty()) {
      retained_.erase(message.topic);  // empty retained payload clears
    } else {
      retained_[message.topic] = message;
    }
  }
  route_locked(message);
  return Status::Ok();
}

Result<std::vector<Message>> MqttBroker::poll(const std::string& client_id,
                                              std::size_t max) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end() || !it->second.connected) {
    return Status::FailedPrecondition("client '" + client_id +
                                      "' not connected");
  }
  Session& session = it->second;
  std::vector<Message> out;
  const auto now = Clock::now();

  // Redeliver QoS-1 messages whose ack timed out (DUP flag set).
  for (auto& [packet_id, pending] : session.awaiting_ack) {
    if (out.size() >= max) break;
    if (now - pending.sent_at >=
        session.options.ack_timeout / Clock::time_scale()) {
      pending.sent_at = now;
      Message dup = pending.message;
      dup.duplicate = true;
      counters_.redelivered += 1;
      out.push_back(std::move(dup));
    }
  }

  while (out.size() < max && !session.inbox.empty()) {
    Message m = std::move(session.inbox.front());
    session.inbox.pop_front();
    if (m.qos == QoS::kAtLeastOnce) {
      session.awaiting_ack[m.packet_id] = PendingAck{m, now};
    }
    out.push_back(std::move(m));
  }
  return out;
}

Status MqttBroker::ack(const std::string& client_id,
                       std::uint64_t packet_id) {
  MutexLock lock(mutex_);
  auto it = sessions_.find(client_id);
  if (it == sessions_.end()) {
    return Status::NotFound("unknown client '" + client_id + "'");
  }
  if (it->second.awaiting_ack.erase(packet_id) == 0) {
    return Status::NotFound("no pending packet " + std::to_string(packet_id));
  }
  return Status::Ok();
}

std::vector<std::string> MqttBroker::subscriptions(
    const std::string& client_id) const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  auto it = sessions_.find(client_id);
  if (it == sessions_.end()) return out;
  for (const auto& sub : it->second.subscriptions) {
    out.push_back(sub.filter);
  }
  return out;
}

std::size_t MqttBroker::retained_count() const {
  MutexLock lock(mutex_);
  return retained_.size();
}

BrokerCounters MqttBroker::counters() const {
  MutexLock lock(mutex_);
  return counters_;
}

}  // namespace pe::mqtt
