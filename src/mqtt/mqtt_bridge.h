// MQTT -> Kafka-model bridge.
//
// The common edge-to-cloud ingestion pattern: constrained devices publish
// small messages to a nearby MQTT broker; the bridge subscribes with a
// wildcard filter and forwards everything into a partitioned Kafka-model
// topic, where cloud processing keeps replay + consumer-group semantics.
// Messages are keyed by their MQTT topic so one device's stream stays in
// one partition.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "broker/producer.h"
#include "mqtt/mqtt_client.h"

namespace pe::mqtt {

struct BridgeConfig {
  std::string mqtt_filter = "#";
  std::string kafka_topic;
  Duration poll_interval = std::chrono::milliseconds(5);
};

struct BridgeStats {
  std::uint64_t forwarded = 0;
  std::uint64_t forward_errors = 0;
};

/// Runs a forwarding loop on its own thread; stop with shutdown() (also
/// called by the destructor).
class MqttKafkaBridge {
 public:
  MqttKafkaBridge(std::shared_ptr<MqttBroker> mqtt,
                  std::shared_ptr<broker::Broker> kafka,
                  std::shared_ptr<net::Fabric> fabric, net::SiteId site,
                  BridgeConfig config);
  ~MqttKafkaBridge();

  MqttKafkaBridge(const MqttKafkaBridge&) = delete;
  MqttKafkaBridge& operator=(const MqttKafkaBridge&) = delete;

  /// Connects + subscribes + starts the forwarding thread.
  Status start();
  void shutdown();

  BridgeStats stats() const {
    return BridgeStats{forwarded_.load(), errors_.load()};
  }

 private:
  void run();

  std::shared_ptr<MqttBroker> mqtt_;
  std::shared_ptr<broker::Broker> kafka_;
  std::shared_ptr<net::Fabric> fabric_;
  const net::SiteId site_;
  const BridgeConfig config_;
  std::unique_ptr<MqttClient> client_;
  std::unique_ptr<broker::Producer> producer_;
  std::atomic<bool> running_{false};
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::thread thread_;
};

}  // namespace pe::mqtt
