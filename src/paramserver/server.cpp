#include "paramserver/server.h"

namespace pe::ps {

ParameterServer::ParameterServer(net::SiteId site) : site_(std::move(site)) {}

std::uint64_t ParameterServer::set(const std::string& key, Bytes value) {
  std::uint64_t version;
  {
    MutexLock lock(mutex_);
    VersionedValue& entry = entries_[key];
    stats_.sets += 1;
    stats_.bytes_in += value.size();
    entry.value = std::move(value);
    entry.version += 1;
    entry.updated_ns = Clock::now_ns();
    version = entry.version;
  }
  updated_.notify_all();
  return version;
}

Result<VersionedValue> ParameterServer::get(const std::string& key) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("key '" + key + "' not found");
  }
  stats_.gets += 1;
  stats_.bytes_out += it->second.value.size();
  return it->second;
}

Result<std::uint64_t> ParameterServer::compare_and_set(
    const std::string& key, std::uint64_t expected_version, Bytes value) {
  std::uint64_t version;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    const std::uint64_t current = it == entries_.end() ? 0 : it->second.version;
    if (current != expected_version) {
      stats_.cas_conflicts += 1;
      return Status::FailedPrecondition(
          "version conflict on '" + key + "': expected " +
          std::to_string(expected_version) + ", is " + std::to_string(current));
    }
    VersionedValue& entry = entries_[key];
    stats_.cas_success += 1;
    stats_.bytes_in += value.size();
    entry.value = std::move(value);
    entry.version = current + 1;
    entry.updated_ns = Clock::now_ns();
    version = entry.version;
  }
  updated_.notify_all();
  return version;
}

Result<VersionedValue> ParameterServer::watch(const std::string& key,
                                              std::uint64_t last_seen,
                                              Duration timeout) const {
  // `timeout` is an emulated duration, like Consumer::poll's: scale the
  // wall-clock wait so watchers stay consistent with the rest of the
  // stack under PE_TIME_SCALE-accelerated experiments.
  const auto wall_timeout =
      std::chrono::duration_cast<Duration>(timeout / Clock::time_scale());
  UniqueLock lock(mutex_);
  const bool fresh = updated_.wait_for(
      lock, wall_timeout, [&]() PE_NO_THREAD_SAFETY_ANALYSIS {
        auto it = entries_.find(key);
        return it != entries_.end() && it->second.version > last_seen;
      });
  if (!fresh) {
    return Status::Timeout("no update on '" + key + "' past version " +
                           std::to_string(last_seen));
  }
  auto it = entries_.find(key);
  stats_.gets += 1;
  stats_.bytes_out += it->second.value.size();
  return it->second;
}

std::int64_t ParameterServer::incr(const std::string& key,
                                   std::int64_t delta) {
  MutexLock lock(mutex_);
  return counters_[key] += delta;
}

Status ParameterServer::erase(const std::string& key) {
  MutexLock lock(mutex_);
  if (entries_.erase(key) == 0) {
    return Status::NotFound("key '" + key + "' not found");
  }
  return Status::Ok();
}

bool ParameterServer::contains(const std::string& key) const {
  MutexLock lock(mutex_);
  return entries_.count(key) > 0;
}

std::vector<std::string> ParameterServer::keys() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, _] : entries_) out.push_back(k);
  return out;
}

std::size_t ParameterServer::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

ServerStats ParameterServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

}  // namespace pe::ps
