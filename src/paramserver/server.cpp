#include "paramserver/server.h"

#include <limits>

#include "common/logging.h"
#include "telemetry/metrics.h"

namespace pe::ps {

namespace {

// Snapshot record keys: "e:<key>" entry, "c:<key>" counter, "__commit"
// marker carrying the number of records in the snapshot it closes.
constexpr char kEntryPrefix = 'e';
constexpr char kCounterPrefix = 'c';
constexpr const char* kCommitKey = "__commit";

}  // namespace

ParameterServer::ParameterServer(net::SiteId site) : site_(std::move(site)) {}

std::uint64_t ParameterServer::set(const std::string& key, Bytes value) {
  std::uint64_t version;
  {
    MutexLock lock(mutex_);
    VersionedValue& entry = entries_[key];
    stats_.sets += 1;
    stats_.bytes_in += value.size();
    entry.value = std::move(value);
    entry.version += 1;
    entry.updated_ns = Clock::now_ns();
    version = entry.version;
  }
  updated_.notify_all();
  return version;
}

Result<VersionedValue> ParameterServer::get(const std::string& key) const {
  MutexLock lock(mutex_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    return Status::NotFound("key '" + key + "' not found");
  }
  stats_.gets += 1;
  stats_.bytes_out += it->second.value.size();
  return it->second;
}

Result<std::uint64_t> ParameterServer::compare_and_set(
    const std::string& key, std::uint64_t expected_version, Bytes value) {
  std::uint64_t version;
  {
    MutexLock lock(mutex_);
    auto it = entries_.find(key);
    const std::uint64_t current = it == entries_.end() ? 0 : it->second.version;
    if (current != expected_version) {
      stats_.cas_conflicts += 1;
      return Status::FailedPrecondition(
          "version conflict on '" + key + "': expected " +
          std::to_string(expected_version) + ", is " + std::to_string(current));
    }
    VersionedValue& entry = entries_[key];
    stats_.cas_success += 1;
    stats_.bytes_in += value.size();
    entry.value = std::move(value);
    entry.version = current + 1;
    entry.updated_ns = Clock::now_ns();
    version = entry.version;
  }
  updated_.notify_all();
  return version;
}

Result<VersionedValue> ParameterServer::watch(const std::string& key,
                                              std::uint64_t last_seen,
                                              Duration timeout) const {
  // `timeout` is an emulated duration, like Consumer::poll's: scale the
  // wall-clock wait so watchers stay consistent with the rest of the
  // stack under PE_TIME_SCALE-accelerated experiments.
  const auto wall_timeout =
      std::chrono::duration_cast<Duration>(timeout / Clock::time_scale());
  UniqueLock lock(mutex_);
  const bool fresh = updated_.wait_for(
      lock, wall_timeout, [&]() PE_NO_THREAD_SAFETY_ANALYSIS {
        auto it = entries_.find(key);
        return it != entries_.end() && it->second.version > last_seen;
      });
  if (!fresh) {
    return Status::Timeout("no update on '" + key + "' past version " +
                           std::to_string(last_seen));
  }
  auto it = entries_.find(key);
  stats_.gets += 1;
  stats_.bytes_out += it->second.value.size();
  return it->second;
}

std::int64_t ParameterServer::incr(const std::string& key,
                                   std::int64_t delta) {
  MutexLock lock(mutex_);
  return counters_[key] += delta;
}

Status ParameterServer::erase(const std::string& key) {
  MutexLock lock(mutex_);
  if (entries_.erase(key) == 0) {
    return Status::NotFound("key '" + key + "' not found");
  }
  return Status::Ok();
}

bool ParameterServer::contains(const std::string& key) const {
  MutexLock lock(mutex_);
  return entries_.count(key) > 0;
}

std::vector<std::string> ParameterServer::keys() const {
  MutexLock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(entries_.size());
  for (const auto& [k, _] : entries_) out.push_back(k);
  return out;
}

std::size_t ParameterServer::size() const {
  MutexLock lock(mutex_);
  return entries_.size();
}

ServerStats ParameterServer::stats() const {
  MutexLock lock(mutex_);
  return stats_;
}

Status ParameterServer::snapshot(storage::LogDir& log) const {
  MutexLock lock(mutex_);
  const std::uint64_t now_ns = Clock::now_ns();
  std::uint64_t count = 0;
  for (const auto& [key, entry] : entries_) {
    broker::Record record;
    record.key = std::string("e:") + key;
    Bytes out;
    ByteWriter w(out);
    w.put_u64(entry.version);
    w.put_u64(entry.updated_ns);
    w.put_bytes(entry.value);
    record.value = std::move(out);
    if (auto a = log.append(record, now_ns); !a.ok()) return a.status();
    ++count;
  }
  for (const auto& [key, value] : counters_) {
    broker::Record record;
    record.key = std::string("c:") + key;
    Bytes out;
    ByteWriter w(out);
    w.put_u64(static_cast<std::uint64_t>(value));
    record.value = std::move(out);
    if (auto a = log.append(record, now_ns); !a.ok()) return a.status();
    ++count;
  }
  broker::Record marker;
  marker.key = kCommitKey;
  Bytes out;
  ByteWriter w(out);
  w.put_u64(count);
  marker.value = std::move(out);
  if (auto a = log.append(marker, now_ns); !a.ok()) return a.status();
  // The marker only counts once its records are on stable storage: a
  // snapshot is complete iff the fsync below returned.
  if (auto s = log.sync(); !s.ok()) return s;
  // Older snapshots are garbage now; whole-segment retention keeps every
  // segment still needed to cover this snapshot's records.
  log.apply_retention(count + 1, 0, 0);
  tel::MetricsRegistry::global().counter("ps.snapshots").add();
  return Status::Ok();
}

Status ParameterServer::restore(storage::LogDir& log) {
  std::map<std::string, VersionedValue> entries, staged_entries;
  std::map<std::string, std::int64_t> counters, staged_counters;
  bool complete = false;
  std::uint64_t staged = 0;

  std::uint64_t offset = log.start_offset();
  const std::uint64_t end = log.end_offset();
  while (offset < end) {
    auto batch = log.fetch(offset, 512,
                           std::numeric_limits<std::uint64_t>::max());
    if (!batch.ok()) return batch.status();
    if (batch.value().empty()) break;
    for (const auto& r : batch.value()) {
      const std::string& key = r.record.key;
      if (key == kCommitKey) {
        std::uint64_t want = 0;
        ByteReader reader(r.record.value);
        if (reader.get_u64(want).ok() && want == staged) {
          entries = std::move(staged_entries);
          counters = std::move(staged_counters);
          complete = true;
        } else {
          PE_LOG_WARN("ignoring snapshot with bad commit marker at offset "
                      << r.offset);
        }
        staged_entries.clear();
        staged_counters.clear();
        staged = 0;
        continue;
      }
      if (key.size() < 2 || key[1] != ':') {
        PE_LOG_WARN("skipping malformed snapshot key at offset " << r.offset);
        continue;
      }
      ByteReader reader(r.record.value);
      if (key[0] == kEntryPrefix) {
        VersionedValue entry;
        if (!reader.get_u64(entry.version).ok() ||
            !reader.get_u64(entry.updated_ns).ok() ||
            !reader.get_bytes(entry.value).ok()) {
          PE_LOG_WARN("skipping malformed snapshot entry at offset "
                      << r.offset);
          continue;
        }
        staged_entries[key.substr(2)] = std::move(entry);
        ++staged;
      } else if (key[0] == kCounterPrefix) {
        std::uint64_t bits = 0;
        if (!reader.get_u64(bits).ok()) {
          PE_LOG_WARN("skipping malformed snapshot counter at offset "
                      << r.offset);
          continue;
        }
        staged_counters[key.substr(2)] = static_cast<std::int64_t>(bits);
        ++staged;
      }
    }
    offset = batch.value().back().offset + 1;
  }

  if (!complete) {
    return Status::NotFound("no complete snapshot in '" + log.dir() + "'");
  }
  {
    MutexLock lock(mutex_);
    entries_ = std::move(entries);
    counters_ = std::move(counters);
  }
  updated_.notify_all();
  return Status::Ok();
}

Status ParameterServer::snapshot_to(const std::string& dir,
                                    storage::StorageConfig config) const {
  // The snapshot syncs exactly once, at the commit marker.
  config.flush_policy = storage::FlushPolicy::kNever;
  auto log = storage::LogDir::open(dir, config);
  if (!log.ok()) return log.status();
  return snapshot(*log.value());
}

Status ParameterServer::restore_from(const std::string& dir,
                                     storage::StorageConfig config) {
  auto log = storage::LogDir::open(dir, config);
  if (!log.ok()) return log.status();
  return restore(*log.value());
}

}  // namespace pe::ps
