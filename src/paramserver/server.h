// ParameterServer: versioned key-value store for shared state.
//
// The paper uses a Redis instance as a "parameter server for sharing model
// weights across the continuum". This is the same role: byte values under
// string keys, a monotonically increasing version per key, compare-and-set
// for optimistic concurrency between trainers, and blocking watch so
// inference tasks can pick up fresh models without polling.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "common/serialize.h"
#include "common/status.h"
#include "network/site.h"
#include "storage/log_dir.h"
#include "storage/storage_config.h"

namespace pe::ps {

struct VersionedValue {
  Bytes value;
  std::uint64_t version = 0;
  std::uint64_t updated_ns = 0;
};

struct ServerStats {
  std::uint64_t sets = 0;
  std::uint64_t gets = 0;
  std::uint64_t cas_success = 0;
  std::uint64_t cas_conflicts = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class ParameterServer {
 public:
  explicit ParameterServer(net::SiteId site);

  const net::SiteId& site() const { return site_; }

  /// Unconditional write; returns the new version (starts at 1).
  std::uint64_t set(const std::string& key, Bytes value);

  /// Read; NOT_FOUND if absent.
  Result<VersionedValue> get(const std::string& key) const;

  /// Writes only if the current version equals expected_version (0 means
  /// "key must not exist"). FAILED_PRECONDITION on version conflict.
  Result<std::uint64_t> compare_and_set(const std::string& key,
                                        std::uint64_t expected_version,
                                        Bytes value);

  /// Blocks until key's version exceeds last_seen (or timeout). Returns
  /// the fresh value; TIMEOUT if nothing newer arrived in time.
  Result<VersionedValue> watch(const std::string& key,
                               std::uint64_t last_seen,
                               Duration timeout) const;

  /// Atomic counter increment (creates the key at 0 first); returns the
  /// post-increment value.
  std::int64_t incr(const std::string& key, std::int64_t delta = 1);

  Status erase(const std::string& key);
  bool contains(const std::string& key) const;
  std::vector<std::string> keys() const;
  std::size_t size() const;

  ServerStats stats() const;

  // --- durability ---
  //
  // A snapshot is a consistent point-in-time copy of every entry and
  // counter, appended to a storage::LogDir as one record per key plus a
  // trailing commit marker, then fsynced. A snapshot interrupted by a
  // crash has no marker and is ignored by restore(); restore() installs
  // the latest *complete* snapshot in the log. After a successful
  // snapshot the log's older segments (previous snapshots) are dropped.

  /// Appends a snapshot to `log` and fsyncs it.
  Status snapshot(storage::LogDir& log) const;
  /// Replaces all entries and counters with the latest complete snapshot
  /// in `log`; NOT_FOUND if the log holds none. Watchers are woken.
  Status restore(storage::LogDir& log);

  /// Convenience: open (or create) `dir` and snapshot into / restore
  /// from it.
  Status snapshot_to(const std::string& dir,
                     storage::StorageConfig config = {}) const;
  Status restore_from(const std::string& dir,
                      storage::StorageConfig config = {});

 private:
  const net::SiteId site_;
  mutable Mutex mutex_{"ps.server"};
  mutable CondVar updated_;
  std::map<std::string, VersionedValue> entries_ PE_GUARDED_BY(mutex_);
  std::map<std::string, std::int64_t> counters_ PE_GUARDED_BY(mutex_);
  mutable ServerStats stats_ PE_GUARDED_BY(mutex_);
};

}  // namespace pe::ps
