// ParameterClient: site-attached client for the ParameterServer.
//
// Charges every payload to the fabric link between the client's site and
// the server's site, so cross-continuum model sharing pays WAN costs just
// like broker traffic does.
#pragma once

#include <memory>
#include <string>

#include "network/fabric.h"
#include "paramserver/server.h"

namespace pe::ps {

class ParameterClient {
 public:
  ParameterClient(std::shared_ptr<ParameterServer> server,
                  std::shared_ptr<net::Fabric> fabric, net::SiteId site)
      : server_(std::move(server)),
        fabric_(std::move(fabric)),
        site_(std::move(site)) {}

  const net::SiteId& site() const { return site_; }

  Result<std::uint64_t> set(const std::string& key, Bytes value) {
    if (auto t = fabric_->transfer(site_, server_->site(),
                                   value.size() + key.size());
        !t.ok()) {
      return t.status();
    }
    return server_->set(key, std::move(value));
  }

  Result<VersionedValue> get(const std::string& key) {
    auto entry = server_->get(key);
    if (!entry.ok()) return entry;
    if (auto t = fabric_->transfer(server_->site(), site_,
                                   entry.value().value.size());
        !t.ok()) {
      return t.status();
    }
    return entry;
  }

  Result<std::uint64_t> compare_and_set(const std::string& key,
                                        std::uint64_t expected_version,
                                        Bytes value) {
    if (auto t = fabric_->transfer(site_, server_->site(),
                                   value.size() + key.size());
        !t.ok()) {
      return t.status();
    }
    return server_->compare_and_set(key, expected_version, std::move(value));
  }

  /// Blocking watch; the fresh value's bytes are charged on return.
  Result<VersionedValue> watch(const std::string& key, std::uint64_t last_seen,
                               Duration timeout) {
    auto entry = server_->watch(key, last_seen, timeout);
    if (!entry.ok()) return entry;
    if (auto t = fabric_->transfer(server_->site(), site_,
                                   entry.value().value.size());
        !t.ok()) {
      return t.status();
    }
    return entry;
  }

 private:
  std::shared_ptr<ParameterServer> server_;
  std::shared_ptr<net::Fabric> fabric_;
  const net::SiteId site_;
};

}  // namespace pe::ps
