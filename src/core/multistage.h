// MultiStagePipeline: N-layer continuum topologies.
//
// The paper's future work (§V): "we will generalize the abstraction to
// arbitrary architectures and topologies of resources — currently, it is
// limited to two layers: edge and cloud." This pipeline chains an
// arbitrary number of processing stages, each bound to its own pilot
// (edge gateway, fog/regional cloud, central cloud, ...) and connected by
// per-stage broker topics:
//
//   devices --produce--> [topic 0] --stage 0--> [topic 1] --stage 1--> ...
//
// Each stage consumes its input topic with a consumer group sized to the
// topic's partitions, applies its ProcessFn, and produces the transformed
// block to the next topic (the final stage only consumes). Every hop
// charges the fabric link between the stages' sites, so a fog layer that
// reduces data before the WAN shows up exactly like the paper's hybrid
// deployment — but with as many layers as the application wants.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "broker/broker.h"
#include "common/histogram.h"
#include "common/mutex.h"
#include "common/status.h"
#include "core/faas.h"
#include "mqtt/mqtt_bridge.h"
#include "resource/pilot.h"
#include "telemetry/collector.h"

namespace pe::core {

/// One processing layer of the chain.
struct StageSpec {
  std::string name;
  res::PilotPtr pilot;
  ProcessFnFactory process;
  /// Parallel tasks for this stage; 0 = one per input-topic partition.
  std::size_t tasks = 0;
};

struct MultiStageConfig {
  std::string topic_prefix = "stage";
  std::size_t edge_devices = 1;
  /// Partitions for every chained topic; 0 = one per device.
  std::uint32_t partitions = 0;
  std::size_t messages_per_device = 16;
  std::size_t rows_per_message = 100;
  Duration produce_interval = Duration::zero();
  Duration poll_timeout = std::chrono::milliseconds(50);
  Duration run_timeout = std::chrono::minutes(10);
  ConfigMap function_context;
};

struct StageReport {
  std::string name;
  std::uint64_t messages_in = 0;
  std::uint64_t messages_out = 0;
  std::uint64_t errors = 0;
  SummaryStats processing_ms;
};

struct MultiStageReport {
  Status status = Status::Ok();
  std::uint64_t messages_produced = 0;
  /// Messages that completed the full chain.
  std::uint64_t messages_completed = 0;
  SummaryStats end_to_end_ms;
  std::vector<StageReport> stages;
  std::string to_string() const;
};

class MultiStagePipeline {
 public:
  explicit MultiStagePipeline(MultiStageConfig config);
  ~MultiStagePipeline();

  MultiStagePipeline(const MultiStagePipeline&) = delete;
  MultiStagePipeline& operator=(const MultiStagePipeline&) = delete;

  MultiStagePipeline& set_fabric(std::shared_ptr<net::Fabric> fabric);
  /// Pilot hosting the broker for all chained topics.
  MultiStagePipeline& set_pilot_broker(res::PilotPtr pilot);
  /// Pilot(s) hosting the produce (device) tasks.
  MultiStagePipeline& set_pilot_edge(res::PilotPtr pilot);
  MultiStagePipeline& set_produce_function(ProduceFnFactory factory);
  /// Appends a stage; stages execute in insertion order.
  MultiStagePipeline& add_stage(StageSpec stage);

  const std::string& id() const { return id_; }
  std::size_t stage_count() const { return stages_.size(); }

  Result<MultiStageReport> run();

 private:
  struct StageState {
    std::atomic<std::uint64_t> in{0};
    std::atomic<std::uint64_t> out{0};
    std::atomic<std::uint64_t> errors{0};
    std::atomic<std::uint64_t> running{0};  // live tasks of this stage
    Histogram processing_ms;
    /// Set once every task of the *previous* layer is done, so this
    /// stage can drain and exit.
    std::atomic<bool> upstream_done{false};
    // Effectively-once per stage (broker is at-least-once).
    Mutex seen_mutex{"core.multistage.seen"};
    std::unordered_set<std::uint64_t> seen PE_GUARDED_BY(seen_mutex);
  };

  Status validate() const;
  std::string topic_name(std::size_t stage) const;
  Status producer_body(exec::TaskContext& tctx, std::size_t device_index);
  Status stage_body(exec::TaskContext& tctx, std::size_t stage_index,
                    std::size_t task_index);
  void stop_all();

  const std::string id_;
  MultiStageConfig config_;
  std::shared_ptr<net::Fabric> fabric_;
  res::PilotPtr broker_pilot_;
  res::PilotPtr edge_pilot_;
  ProduceFnFactory produce_factory_;
  std::vector<StageSpec> stages_;

  std::shared_ptr<broker::Broker> broker_;
  std::shared_ptr<tel::SpanCollector> collector_;
  std::uint32_t effective_partitions_ = 0;
  std::atomic<std::uint64_t> produced_{0};
  std::atomic<std::uint64_t> producers_running_{0};
  std::vector<std::unique_ptr<StageState>> stage_states_;
  std::vector<exec::TaskHandle> handles_;
  bool started_ = false;
};

}  // namespace pe::core
