// EdgeToCloudPipeline: the Pilot-Edge application runtime (Listing 2).
//
// Wires produce functions on edge pilots through a pilot-managed broker
// topic to processing functions on cloud pilots, stamping telemetry spans
// at every stage. Supports the paper's dynamism hooks: processing
// functions can be replaced at runtime without new pilots, and processing
// capacity can be scaled out while the pipeline runs.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "broker/broker.h"
#include "common/clock.h"
#include "common/mutex.h"
#include "common/status.h"
#include "mqtt/mqtt_bridge.h"
#include "core/faas.h"
#include "core/placement.h"
#include "paramserver/server.h"
#include "resource/pilot.h"
#include "resource/pilot_manager.h"
#include "taskexec/scheduler.h"
#include "telemetry/collector.h"
#include "telemetry/report.h"

namespace pe::core {

/// How edge data enters the broker fabric.
enum class IngestPath {
  /// Devices produce straight to the Kafka-model broker (default).
  kKafkaDirect,
  /// Devices publish via a lightweight MQTT broker on the edge site; an
  /// MQTT->Kafka bridge on the broker site forwards into the topic
  /// (paper §II-B: MQTT plugin for low-power environments). Partitioning
  /// is then by device key hash instead of explicit assignment.
  kMqttBridge,
};

struct PipelineConfig {
  std::string topic = "pe-data";
  IngestPath ingest = IngestPath::kKafkaDirect;
  std::size_t edge_devices = 1;
  /// 0 = one partition per edge device (the paper's setup).
  std::uint32_t partitions = 0;
  std::size_t messages_per_device = 512;  // paper: 512 messages per run
  std::size_t rows_per_message = 1000;
  /// 0 = one processing task per partition (paper: constant Kafka:Dask
  /// partition ratio).
  std::size_t processing_tasks = 0;
  DeploymentMode mode = DeploymentMode::kCloudCentric;
  /// Pause between messages on each device (0 = produce at full rate).
  Duration produce_interval = Duration::zero();
  Duration poll_timeout = std::chrono::milliseconds(50);
  Duration run_timeout = std::chrono::minutes(10);
  bool enable_parameter_server = true;
  /// Publish a compact ResultRecord per processed message to
  /// "<topic>-results" (consumable by downstream applications).
  bool emit_results = false;
  /// When true (and a PilotManager with auto_reprovision is attached via
  /// set_pilot_manager), the pipeline subscribes to pilot-replacement
  /// events and re-binds: a replaced cloud pilot gets its processing
  /// tasks respawned on the new cluster (consumers rejoin the group, the
  /// message-id dedup absorbs redelivery); a replaced edge pilot is
  /// swapped in for future scale-out but finished producers are not
  /// restarted (that would duplicate data).
  bool auto_recover = false;
  /// Per-record processing retries for *transient* failures before the
  /// record is routed to the "<topic>.dlq" dead-letter topic.
  /// Non-transient failures dead-letter immediately.
  std::uint32_t processing_retries = 2;
  /// Copied into every FunctionContext (Listing 2: function_context).
  ConfigMap function_context;
};

/// Everything a finished run reports.
struct PipelineRunReport {
  Status status = Status::Ok();
  tel::RunReport run;
  std::uint64_t messages_produced = 0;
  std::uint64_t messages_processed = 0;
  std::uint64_t outliers_detected = 0;
  std::uint64_t processing_errors = 0;
  /// Broker redeliveries skipped by message-id deduplication.
  std::uint64_t duplicates_skipped = 0;
  /// Records that exhausted processing retries and went to the DLQ (they
  /// still count as processed so the run drains).
  std::uint64_t messages_dead_lettered = 0;
  /// Pilot replacements the pipeline re-bound to during this run.
  std::uint64_t pilot_recoveries = 0;
  broker::BrokerStats broker;
  ps::ServerStats parameter_server;
};

class EdgeToCloudPipeline {
 public:
  explicit EdgeToCloudPipeline(PipelineConfig config);
  ~EdgeToCloudPipeline();

  EdgeToCloudPipeline(const EdgeToCloudPipeline&) = delete;
  EdgeToCloudPipeline& operator=(const EdgeToCloudPipeline&) = delete;

  // --- wiring (mirrors Listing 2) ---
  EdgeToCloudPipeline& set_pilot_edge(res::PilotPtr pilot);
  /// Additional edge pilots; devices are spread round-robin across all.
  EdgeToCloudPipeline& add_pilot_edge(res::PilotPtr pilot);
  EdgeToCloudPipeline& set_pilot_cloud_processing(res::PilotPtr pilot);
  EdgeToCloudPipeline& set_pilot_cloud_broker(res::PilotPtr pilot);
  EdgeToCloudPipeline& set_produce_function(ProduceFnFactory factory);
  EdgeToCloudPipeline& set_process_edge_function(ProcessFnFactory factory);
  EdgeToCloudPipeline& set_process_cloud_function(ProcessFnFactory factory);
  EdgeToCloudPipeline& set_fabric(std::shared_ptr<net::Fabric> fabric);
  /// Attaches the (non-owned) manager whose replacement events drive
  /// config.auto_recover. The manager must outlive the pipeline run.
  EdgeToCloudPipeline& set_pilot_manager(res::PilotManager* manager);

  const std::string& id() const { return id_; }
  const PipelineConfig& config() const { return config_; }
  /// Topic name carrying ResultRecords when config().emit_results is set.
  std::string results_topic() const { return config_.topic + "-results"; }

  /// start + wait + stop in one call.
  Result<PipelineRunReport> run();

  /// Launches producers and processors; returns immediately.
  Status start();
  /// Blocks until all produced messages are processed (or run_timeout).
  Status wait();
  /// Stops all tasks and finalizes.
  void stop();
  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Builds a report from the spans completed so far.
  PipelineRunReport report(const std::string& label = "") const;

  // --- runtime dynamism (paper §II-D) ---
  /// Atomically replaces the cloud processing function; running tasks pick
  /// the new function up on their next message — no new pilot needed.
  void replace_process_cloud_function(ProcessFnFactory factory);
  /// Adds `count` processing tasks on the cloud pilot at runtime.
  Status scale_processing(std::size_t count);

  /// Live progress counters.
  std::uint64_t messages_produced() const { return produced_.load(); }
  std::uint64_t messages_processed() const { return processed_.load(); }

  /// The pipeline-managed parameter server (null before start or when
  /// disabled).
  std::shared_ptr<ps::ParameterServer> parameter_server() const;

 private:
  Status validate() const;
  exec::TaskSpec make_producer_task(std::size_t device_index);
  exec::TaskSpec make_processing_task(std::size_t task_index)
      PE_REQUIRES(pilots_mutex_);
  Status producer_body(exec::TaskContext& tctx, std::size_t device_index,
                       const net::SiteId& site);
  Status processing_body(exec::TaskContext& tctx, std::size_t task_index,
                         const net::SiteId& site);
  bool work_finished() const;
  /// PilotManager replacement event: re-bind the matching pilot pointer
  /// and (for the cloud processing pilot) respawn processing tasks on the
  /// replacement cluster. Runs on the manager's monitor thread.
  void on_pilot_replaced(const res::PilotPtr& failed,
                         const res::PilotPtr& replacement);
  Status scale_processing_locked(std::size_t count)
      PE_REQUIRES(pilots_mutex_);
  /// Dead-letters a record after exhausted/non-transient processing
  /// failure; counts it as processed so the run drains.
  void dead_letter_record(const broker::ConsumedRecord& record,
                          const Status& failure);

  const std::string id_;
  PipelineConfig config_;
  std::shared_ptr<net::Fabric> fabric_;
  // Pilot bindings can be swapped at runtime by recovery. Unranked: the
  // graph tracks its edges into the resource and exec domains.
  mutable Mutex pilots_mutex_{"core.pipeline.pilots"};
  std::vector<res::PilotPtr> edge_pilots_ PE_GUARDED_BY(pilots_mutex_);
  res::PilotPtr cloud_pilot_ PE_GUARDED_BY(pilots_mutex_);
  res::PilotPtr broker_pilot_ PE_GUARDED_BY(pilots_mutex_);
  res::PilotManager* pilot_manager_ = nullptr;
  std::uint64_t replacement_sub_token_ = 0;
  ProduceFnFactory produce_factory_;
  ProcessFnFactory edge_factory_;
  ProcessFnFactory cloud_factory_ PE_GUARDED_BY(factory_mutex_);

  // Run state.
  std::shared_ptr<broker::Broker> broker_;
  std::shared_ptr<mqtt::MqttBroker> mqtt_broker_;
  std::unique_ptr<mqtt::MqttKafkaBridge> mqtt_bridge_;
  std::shared_ptr<ps::ParameterServer> param_server_;
  std::shared_ptr<tel::SpanCollector> collector_;
  std::vector<exec::TaskHandle> producer_handles_;
  // Recovery appends re-spawned tasks from the monitor thread, so the
  // processing fleet shares the pilot-binding lock.
  std::vector<exec::TaskHandle> processing_handles_
      PE_GUARDED_BY(pilots_mutex_);
  std::uint32_t effective_partitions_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> producers_done_{false};
  std::atomic<std::uint64_t> produced_{0};
  std::atomic<std::uint64_t> processed_{0};
  std::atomic<std::uint64_t> outliers_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> dead_lettered_{0};
  std::atomic<std::uint64_t> recoveries_{0};
  std::atomic<std::uint64_t> producers_running_{0};

  // At-least-once delivery from the broker (consumer-group rebalances can
  // redeliver uncommitted records) is turned into effectively-once
  // processing by deduplicating on the unique message id.
  Mutex processed_ids_mutex_{"core.pipeline.dedup"};
  std::unordered_set<std::uint64_t> processed_ids_
      PE_GUARDED_BY(processed_ids_mutex_);

  // Hot-swappable processing function factory (dynamism).
  mutable Mutex factory_mutex_{"core.pipeline.factory"};
  std::atomic<std::uint64_t> cloud_factory_generation_{0};
  std::size_t next_processing_index_ PE_GUARDED_BY(pilots_mutex_) = 0;
};

}  // namespace pe::core
