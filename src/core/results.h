// ResultRecord: the compact per-message outcome a processing task emits
// to the pipeline's results topic (paper §II-B: "the output is captured
// with a return parameter"). Downstream applications (dashboards,
// alerting) consume these instead of the raw data stream.
#pragma once

#include <cstdint>

#include "common/serialize.h"
#include "common/status.h"

namespace pe::core {

struct ResultRecord {
  std::uint64_t message_id = 0;
  std::uint64_t rows = 0;
  std::uint64_t outliers = 0;
  double score_mean = 0.0;
  double score_max = 0.0;
  std::uint64_t processed_ns = 0;

  Bytes encode() const {
    Bytes out;
    ByteWriter w(out);
    w.put_u64(message_id);
    w.put_u64(rows);
    w.put_u64(outliers);
    w.put_f64(score_mean);
    w.put_f64(score_max);
    w.put_u64(processed_ns);
    return out;
  }

  static Result<ResultRecord> decode(ByteSpan bytes) {
    ByteReader r(bytes);
    ResultRecord record;
    if (auto s = r.get_u64(record.message_id); !s.ok()) return s;
    if (auto s = r.get_u64(record.rows); !s.ok()) return s;
    if (auto s = r.get_u64(record.outliers); !s.ok()) return s;
    if (auto s = r.get_f64(record.score_mean); !s.ok()) return s;
    if (auto s = r.get_f64(record.score_max); !s.ok()) return s;
    if (auto s = r.get_u64(record.processed_ns); !s.ok()) return s;
    return record;
  }
};

}  // namespace pe::core
