// Built-in Pilot-Edge function library.
//
// The paper's common patterns (§II-D) as ready-made handlers:
//  - sensing/data generation on the edge (synthetic Mini-App generator),
//  - edge pre-aggregation / compression,
//  - cloud ML processing (streaming train + outlier inference with model
//    sharing through the parameter service).
#pragma once

#include <cstdint>

#include "core/faas.h"
#include "data/generator.h"
#include "data/seasonal.h"
#include "ml/factory.h"

namespace pe::core::functions {

/// produce_edge: emits blocks of `rows_per_message` synthetic points per
/// invocation. Each device gets an independent generator (seeded by
/// base config seed + device index).
ProduceFnFactory make_generator_produce(data::GeneratorConfig config,
                                        std::size_t rows_per_message);

/// produce_edge: periodic sensor time series with injected spikes/level
/// shifts (the paper's "seasonal" IoT motif). Per-device independent
/// phase/seed.
ProduceFnFactory make_seasonal_produce(data::SeasonalConfig config,
                                       std::size_t rows_per_message);

/// process_edge / process_cloud: no-op forwarding (baseline runs).
ProcessFnFactory make_passthrough_process();

/// process_edge: mean-aggregates every `window` consecutive rows into one,
/// shrinking the payload by ~window (the paper's "data pre-aggregation
/// ... data compression to ensure that the amount of data movement is
/// minimal"). Ground-truth labels are max-pooled over the window.
ProcessFnFactory make_aggregate_edge(std::size_t window);

struct ModelProcessOptions {
  /// Share of highest scores flagged as outliers (PyOD contamination).
  double contamination = 0.05;
  /// Publish model weights to the parameter service every N invocations
  /// (0 = never). Key: "model/<task_id>".
  std::size_t publish_interval = 8;
  /// Also re-load the latest published weights under `pull_key` before
  /// each publish (simple cross-task model exchange). Empty = off.
  std::string pull_key;
  /// Sliding training window: keep the most recent N rows across blocks
  /// and train on the window instead of only the newest block (0 = train
  /// per block). PyOD-style batch training over recent history.
  std::size_t window_rows = 0;
};

/// process_cloud: streaming ML. Per task: its own model replica; per
/// invocation: partial_fit on the block, score all rows, threshold by
/// contamination quantile, optionally exchange weights via the parameter
/// service.
ProcessFnFactory make_model_process(ml::ModelKind kind,
                                    ConfigMap model_config = {},
                                    ModelProcessOptions options = {});

}  // namespace pe::core::functions
