#include "core/pipeline.h"

#include <algorithm>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "common/ids.h"
#include "common/logging.h"
#include "core/results.h"
#include "data/codec.h"
#include "telemetry/metrics.h"

namespace pe::core {

EdgeToCloudPipeline::EdgeToCloudPipeline(PipelineConfig config)
    : id_(next_pipeline_id()), config_(std::move(config)) {}

EdgeToCloudPipeline::~EdgeToCloudPipeline() { stop(); }

EdgeToCloudPipeline& EdgeToCloudPipeline::set_pilot_edge(res::PilotPtr p) {
  MutexLock lock(pilots_mutex_);
  edge_pilots_.clear();
  edge_pilots_.push_back(std::move(p));
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::add_pilot_edge(res::PilotPtr p) {
  MutexLock lock(pilots_mutex_);
  edge_pilots_.push_back(std::move(p));
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_pilot_cloud_processing(
    res::PilotPtr p) {
  MutexLock lock(pilots_mutex_);
  cloud_pilot_ = std::move(p);
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_pilot_cloud_broker(
    res::PilotPtr p) {
  MutexLock lock(pilots_mutex_);
  broker_pilot_ = std::move(p);
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_produce_function(
    ProduceFnFactory f) {
  produce_factory_ = std::move(f);
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_process_edge_function(
    ProcessFnFactory f) {
  edge_factory_ = std::move(f);
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_process_cloud_function(
    ProcessFnFactory f) {
  MutexLock lock(factory_mutex_);
  cloud_factory_ = std::move(f);
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_fabric(
    std::shared_ptr<net::Fabric> fabric) {
  fabric_ = std::move(fabric);
  return *this;
}
EdgeToCloudPipeline& EdgeToCloudPipeline::set_pilot_manager(
    res::PilotManager* manager) {
  pilot_manager_ = manager;
  return *this;
}

Status EdgeToCloudPipeline::validate() const {
  if (!fabric_) return Status::InvalidArgument("no fabric set");
  {
    MutexLock lock(pilots_mutex_);
    if (edge_pilots_.empty()) return Status::InvalidArgument("no edge pilot");
    if (!cloud_pilot_) {
      return Status::InvalidArgument("no cloud processing pilot");
    }
    if (!broker_pilot_) return Status::InvalidArgument("no broker pilot");
  }
  if (!produce_factory_) {
    return Status::InvalidArgument("no produce function");
  }
  {
    MutexLock lock(factory_mutex_);
    if (!cloud_factory_) {
      return Status::InvalidArgument("no cloud processing function");
    }
  }
  if (config_.edge_devices == 0) {
    return Status::InvalidArgument("need >= 1 edge device");
  }
  if ((config_.mode == DeploymentMode::kHybrid ||
       config_.mode == DeploymentMode::kEdgeCentric) &&
      !edge_factory_) {
    return Status::InvalidArgument(
        std::string(to_string(config_.mode)) +
        " deployment needs a process_edge function");
  }
  return Status::Ok();
}

Status EdgeToCloudPipeline::start() {
  if (running_.load()) return Status::FailedPrecondition("already running");
  if (auto s = validate(); !s.ok()) return s;

  // Snapshot the pilot bindings; the waits below can block, so they must
  // not run under pilots_mutex_ (recovery rebinds would stall behind us).
  std::vector<res::PilotPtr> edge_pilots;
  res::PilotPtr cloud_pilot;
  res::PilotPtr broker_pilot;
  {
    MutexLock lock(pilots_mutex_);
    edge_pilots = edge_pilots_;
    cloud_pilot = cloud_pilot_;
    broker_pilot = broker_pilot_;
  }

  for (const auto& p : edge_pilots) {
    if (auto s = p->wait_active(); !s.ok()) return s;
  }
  if (auto s = cloud_pilot->wait_active(); !s.ok()) return s;
  if (auto s = broker_pilot->wait_active(); !s.ok()) return s;

  broker_ = broker_pilot->broker();
  if (!broker_) {
    return Status::InvalidArgument(
        "broker pilot has no broker (use Backend::kBrokerService)");
  }

  effective_partitions_ =
      config_.partitions != 0
          ? config_.partitions
          : static_cast<std::uint32_t>(config_.edge_devices);
  broker::TopicConfig topic_config;
  topic_config.partitions = effective_partitions_;
  if (auto s = broker_->create_topic(config_.topic, topic_config);
      !s.ok() && s.code() != StatusCode::kAlreadyExists) {
    return s;
  }

  if (config_.emit_results) {
    broker::TopicConfig results_config;
    results_config.partitions = effective_partitions_;
    if (auto s = broker_->create_topic(results_topic(), results_config);
        !s.ok() && s.code() != StatusCode::kAlreadyExists) {
      return s;
    }
  }

  if (config_.ingest == IngestPath::kMqttBridge) {
    // Lightweight MQTT broker co-located with the (first) edge pilot; the
    // bridge runs on the same edge gateway and forwards into the
    // Kafka-model topic across the fabric.
    const net::SiteId edge_site = edge_pilots.front()->site();
    mqtt_broker_ = std::make_shared<mqtt::MqttBroker>(edge_site);
    mqtt::BridgeConfig bridge_config;
    bridge_config.mqtt_filter = "pe/" + id_ + "/#";
    bridge_config.kafka_topic = config_.topic;
    mqtt_bridge_ = std::make_unique<mqtt::MqttKafkaBridge>(
        mqtt_broker_, broker_, fabric_, edge_site, bridge_config);
    if (auto s = mqtt_bridge_->start(); !s.ok()) return s;
  }

  if (config_.enable_parameter_server) {
    param_server_ = std::make_shared<ps::ParameterServer>(broker_->site());
  }
  collector_ = std::make_shared<tel::SpanCollector>();
  produced_.store(0);
  processed_.store(0);
  outliers_.store(0);
  errors_.store(0);
  duplicates_.store(0);
  dead_lettered_.store(0);
  recoveries_.store(0);
  producers_done_.store(false);
  producer_handles_.clear();
  {
    MutexLock lock(pilots_mutex_);
    processing_handles_.clear();
    next_processing_index_ = 0;
  }
  {
    MutexLock lock(processed_ids_mutex_);
    processed_ids_.clear();
  }

  // Capacity sanity: warn when tasks will queue on cores (would distort
  // throughput experiments).
  std::uint32_t edge_cores = 0;
  for (const auto& p : edge_pilots) edge_cores += p->granted_cores();
  if (edge_cores < config_.edge_devices) {
    PE_LOG_WARN("pipeline " << id_ << ": " << config_.edge_devices
                            << " devices on " << edge_cores
                            << " edge cores — devices will queue");
  }

  const std::size_t n_processing = config_.processing_tasks != 0
                                       ? config_.processing_tasks
                                       : effective_partitions_;
  if (cloud_pilot->granted_cores() < n_processing) {
    PE_LOG_WARN("pipeline " << id_ << ": " << n_processing
                            << " processing tasks on "
                            << cloud_pilot->granted_cores()
                            << " cloud cores — tasks will queue");
  }

  running_.store(true);

  // Processing tasks first so consumers are polling when data arrives.
  for (std::size_t t = 0; t < n_processing; ++t) {
    if (auto s = scale_processing(1); !s.ok()) {
      stop();
      return s;
    }
  }

  // Producer (edge device) tasks, round-robin across edge pilots.
  producers_running_.store(config_.edge_devices);
  for (std::size_t d = 0; d < config_.edge_devices; ++d) {
    const auto& pilot = edge_pilots[d % edge_pilots.size()];
    auto cluster = pilot->cluster();
    if (!cluster) {
      stop();
      return Status::Internal("edge pilot without cluster");
    }
    exec::TaskSpec spec;
    spec.name = id_ + "-device-" + std::to_string(d);
    spec.cores = 1;
    spec.memory_gb = 1.0;
    const net::SiteId site = pilot->site();
    spec.fn = [this, d, site](exec::TaskContext& tctx) {
      auto status = producer_body(tctx, d, site);
      if (producers_running_.fetch_sub(1) == 1) {
        producers_done_.store(true, std::memory_order_release);
      }
      return status;
    };
    auto handle = cluster->submit(std::move(spec));
    if (!handle.ok()) {
      stop();
      return handle.status();
    }
    producer_handles_.push_back(std::move(handle).value());
  }
  if (config_.auto_recover && pilot_manager_ != nullptr) {
    replacement_sub_token_ = pilot_manager_->subscribe_replacements(
        [this](const res::PilotPtr& failed, const res::PilotPtr& repl) {
          on_pilot_replaced(failed, repl);
        });
  }

  PE_LOG_INFO("pipeline " << id_ << " started: " << config_.edge_devices
                          << " devices, " << effective_partitions_
                          << " partitions, " << n_processing
                          << " processing tasks, mode "
                          << to_string(config_.mode));
  return Status::Ok();
}

void EdgeToCloudPipeline::on_pilot_replaced(const res::PilotPtr& failed,
                                            const res::PilotPtr& replacement) {
  if (!running_.load(std::memory_order_acquire)) return;
  MutexLock lock(pilots_mutex_);
  if (cloud_pilot_ && failed.get() == cloud_pilot_.get()) {
    cloud_pilot_ = replacement;
    recoveries_.fetch_add(1);
    // Respawn the processing fleet on the replacement cluster. The new
    // consumers rejoin "group-<id>", trigger a rebalance, and resume from
    // the committed offsets; uncommitted records are redelivered and
    // absorbed by the message-id dedup (effectively-once survives the
    // failover).
    const std::size_t n = config_.processing_tasks != 0
                              ? config_.processing_tasks
                              : effective_partitions_;
    PE_LOG_INFO("pipeline " << id_ << ": cloud pilot " << failed->id()
                            << " replaced by " << replacement->id()
                            << "; respawning " << n << " processing tasks");
    if (auto s = scale_processing_locked(n); !s.ok()) {
      PE_LOG_WARN("pipeline " << id_ << ": processing respawn failed: "
                              << s.to_string());
    }
    return;
  }
  if (broker_pilot_ && failed.get() == broker_pilot_.get()) {
    // The broker's retained log died with the pilot; transparently
    // re-binding would silently lose data, so only warn.
    PE_LOG_WARN("pipeline " << id_ << ": broker pilot " << failed->id()
                            << " replaced, but broker state rebinding is "
                               "unsupported — run will not recover");
    return;
  }
  for (auto& p : edge_pilots_) {
    if (p.get() == failed.get()) {
      p = replacement;
      recoveries_.fetch_add(1);
      // Producers on the failed pilot already terminated and decremented
      // producers_running_; restarting them would duplicate data, so the
      // replacement only serves future scale-out.
      PE_LOG_INFO("pipeline " << id_ << ": edge pilot " << failed->id()
                              << " replaced by " << replacement->id()
                              << " (producers not restarted)");
    }
  }
}

exec::TaskSpec EdgeToCloudPipeline::make_processing_task(
    std::size_t task_index) {
  exec::TaskSpec spec;
  spec.name = id_ + "-proc-" + std::to_string(task_index);
  spec.cores = 1;
  spec.memory_gb = 2.0;
  const net::SiteId site = cloud_pilot_->site();
  spec.fn = [this, task_index, site](exec::TaskContext& tctx) {
    return processing_body(tctx, task_index, site);
  };
  return spec;
}

Status EdgeToCloudPipeline::scale_processing(std::size_t count) {
  MutexLock lock(pilots_mutex_);
  return scale_processing_locked(count);
}

Status EdgeToCloudPipeline::scale_processing_locked(std::size_t count) {
  if (!running_.load()) {
    return Status::FailedPrecondition("pipeline not running");
  }
  auto cluster = cloud_pilot_->cluster();
  if (!cluster) return Status::Internal("cloud pilot without cluster");
  for (std::size_t i = 0; i < count; ++i) {
    auto handle = cluster->submit(make_processing_task(next_processing_index_++));
    if (!handle.ok()) return handle.status();
    processing_handles_.push_back(std::move(handle).value());
  }
  return Status::Ok();
}

void EdgeToCloudPipeline::replace_process_cloud_function(
    ProcessFnFactory factory) {
  {
    MutexLock lock(factory_mutex_);
    cloud_factory_ = std::move(factory);
  }
  cloud_factory_generation_.fetch_add(1, std::memory_order_release);
  PE_LOG_INFO("pipeline " << id_ << ": cloud processing function replaced");
}

Status EdgeToCloudPipeline::producer_body(exec::TaskContext& tctx,
                                          std::size_t device_index,
                                          const net::SiteId& site) {
  const std::string device_id = "device-" + std::to_string(device_index);
  ProduceFn produce = produce_factory_(device_index);
  ProcessFn edge_process;
  if (edge_factory_ && config_.mode != DeploymentMode::kCloudCentric) {
    edge_process = edge_factory_();
  }
  broker::Producer producer(broker_, fabric_, site);
  std::unique_ptr<mqtt::MqttClient> mqtt_client;
  if (config_.ingest == IngestPath::kMqttBridge) {
    mqtt_client = std::make_unique<mqtt::MqttClient>(
        mqtt_broker_, fabric_, site, id_ + "-" + device_id);
    if (auto c = mqtt_client->connect(); !c.ok()) return c.status();
  }

  std::shared_ptr<ps::ParameterClient> param_client;
  if (param_server_) {
    param_client =
        std::make_shared<ps::ParameterClient>(param_server_, fabric_, site);
  }
  FunctionContext fctx;
  fctx.params().merge_from(config_.function_context);
  fctx.bind(id_, device_id, site, param_client, tctx.stop_flag());

  const std::uint32_t partition = static_cast<std::uint32_t>(
      device_index % effective_partitions_);

  for (std::size_t m = 0; m < config_.messages_per_device; ++m) {
    if (tctx.stop_requested()) {
      return Status::Cancelled("producer stopped");
    }
    fctx.set_invocation(m);
    auto block_result = produce(fctx);
    if (!block_result.ok()) {
      if (block_result.status().code() == StatusCode::kCancelled) break;
      errors_.fetch_add(1);
      return block_result.status();
    }
    data::DataBlock block = std::move(block_result).value();
    block.message_id = next_message_id();
    block.producer_id = device_id;
    block.produced_ns = Clock::now_ns();
    collector_->on_produced(block.message_id, device_id, partition,
                            block.value_bytes(), block.rows,
                            block.produced_ns);

    if (edge_process) {
      auto processed = edge_process(fctx, std::move(block));
      if (!processed.ok()) {
        errors_.fetch_add(1);
        return processed.status();
      }
      block = std::move(processed.value().block);
      outliers_.fetch_add(processed.value().outliers);
      collector_->on_edge_processed(block.message_id, Clock::now_ns());
    }

    const std::uint64_t message_id = block.message_id;
    if (mqtt_client) {
      mqtt::Message m;
      m.topic = "pe/" + id_ + "/" + device_id;
      m.payload = data::Codec::encode(block);
      m.qos = mqtt::QoS::kAtLeastOnce;
      m.publish_ns = block.produced_ns;
      if (auto s = mqtt_client->publish(std::move(m)); !s.ok()) {
        errors_.fetch_add(1);
        return s;
      }
    } else {
      broker::Record record;
      record.key = device_id;
      record.client_timestamp_ns = block.produced_ns;
      record.value = data::Codec::encode_shared(block);
      // Bounded retry on transient broker failures (offline partition,
      // partitioned link) so a short fault does not kill the producer.
      // The per-attempt copy shares the encoded payload — a retry costs a
      // refcount bump, not a re-serialization.
      Status send_status = Status::Ok();
      for (std::uint32_t attempt = 0;; ++attempt) {
        broker::Record copy = record;
        auto meta = producer.send(config_.topic, partition, std::move(copy));
        if (meta.ok()) {
          send_status = Status::Ok();
          break;
        }
        send_status = meta.status();
        if (!send_status.is_transient() || attempt >= 5 ||
            tctx.stop_requested()) {
          break;
        }
        Clock::sleep_scaled(std::chrono::milliseconds(5));
      }
      if (!send_status.ok()) {
        errors_.fetch_add(1);
        return send_status;
      }
    }
    collector_->on_sent(message_id, Clock::now_ns());
    produced_.fetch_add(1);

    if (config_.produce_interval > Duration::zero()) {
      Clock::sleep_scaled(config_.produce_interval);
    }
  }
  return Status::Ok();
}

Status EdgeToCloudPipeline::processing_body(exec::TaskContext& tctx,
                                            std::size_t task_index,
                                            const net::SiteId& site) {
  const std::string task_id = "proc-" + std::to_string(task_index);

  ProcessFn process;
  std::uint64_t local_generation;
  {
    MutexLock lock(factory_mutex_);
    process = cloud_factory_();
    local_generation = cloud_factory_generation_.load();
  }

  broker::ConsumerConfig consumer_config;
  consumer_config.max_poll_records = 16;
  broker::Consumer consumer(broker_, fabric_, site, "group-" + id_,
                            consumer_config);
  if (auto s = consumer.subscribe({config_.topic}); !s.ok()) return s;
  std::unique_ptr<broker::Producer> results_producer;
  if (config_.emit_results) {
    results_producer =
        std::make_unique<broker::Producer>(broker_, fabric_, site);
  }

  std::shared_ptr<ps::ParameterClient> param_client;
  if (param_server_) {
    param_client =
        std::make_shared<ps::ParameterClient>(param_server_, fabric_, site);
  }
  FunctionContext fctx;
  fctx.params().merge_from(config_.function_context);
  fctx.bind(id_, task_id, site, param_client, tctx.stop_flag());

  std::uint64_t invocation = 0;
  while (!tctx.stop_requested() && !work_finished()) {
    // Hot-swap: pick up a replaced processing function (paper: functions
    // can be exchanged at runtime without a new pilot).
    if (cloud_factory_generation_.load(std::memory_order_acquire) !=
        local_generation) {
      MutexLock lock(factory_mutex_);
      process = cloud_factory_();
      local_generation = cloud_factory_generation_.load();
    }

    auto records = consumer.poll(config_.poll_timeout);
    for (auto& record : records) {
      const std::uint64_t now = Clock::now_ns();
      auto decoded = data::Codec::decode(record.record.value);
      if (!decoded.ok()) {
        errors_.fetch_add(1);
        processed_.fetch_add(1);  // count it as handled so the run drains
        PE_LOG_WARN("decode failed: " << decoded.status().to_string());
        continue;
      }
      data::DataBlock block = std::move(decoded).value();
      {
        // Effectively-once: skip broker redeliveries (rebalances can
        // redeliver records consumed but not yet committed).
        MutexLock lock(processed_ids_mutex_);
        if (!processed_ids_.insert(block.message_id).second) {
          duplicates_.fetch_add(1);
          continue;
        }
      }
      collector_->on_broker(block.message_id, record.broker_timestamp_ns);
      collector_->on_consumed(block.message_id, now);

      fctx.set_invocation(invocation++);
      const std::uint64_t message_id = block.message_id;
      collector_->on_process_start(message_id, Clock::now_ns());
      // Transient processing failures are retried in place (the block is
      // copied per attempt because process() consumes it); non-transient
      // failures and exhausted retries route the original record to the
      // dead-letter topic.
      auto attempt_process = [&] {
        data::DataBlock copy = block;
        return process(fctx, std::move(copy));
      };
      auto result = attempt_process();
      for (std::uint32_t attempt = 0;
           !result.ok() && result.status().is_transient() &&
           attempt < config_.processing_retries && !tctx.stop_requested();
           ++attempt) {
        result = attempt_process();
      }
      collector_->on_process_end(message_id, Clock::now_ns());
      if (!result.ok()) {
        errors_.fetch_add(1);
        dead_letter_record(record, result.status());
      } else {
        outliers_.fetch_add(result.value().outliers);
        if (results_producer) {
          ResultRecord summary;
          summary.message_id = message_id;
          summary.rows = result.value().block.rows;
          summary.outliers = result.value().outliers;
          summary.processed_ns = Clock::now_ns();
          if (!result.value().scores.empty()) {
            double sum = 0.0, max = result.value().scores.front();
            for (double s : result.value().scores) {
              sum += s;
              if (s > max) max = s;
            }
            summary.score_mean =
                sum / static_cast<double>(result.value().scores.size());
            summary.score_max = max;
          }
          broker::Record out;
          out.key = result.value().block.producer_id;
          out.value = summary.encode();
          if (auto meta = results_producer->send(results_topic(), record.partition,
                                                 std::move(out));
              !meta.ok()) {
            PE_LOG_WARN("result emit failed: "
                        << meta.status().to_string());
          }
        }
      }
      processed_.fetch_add(1);
      if (tctx.stop_requested()) break;
    }
  }
  return Status::Ok();
}

void EdgeToCloudPipeline::dead_letter_record(
    const broker::ConsumedRecord& record, const Status& failure) {
  dead_lettered_.fetch_add(1);
  tel::MetricsRegistry::global().counter("pipeline.records_dead_lettered")
      .add();
  if (!broker_) return;
  if (auto s = broker_->dead_letter(record.topic, record.partition,
                                    record.record,
                                    std::string(to_string(failure.code())));
      !s.ok()) {
    PE_LOG_WARN("pipeline " << id_ << ": dead-letter of record "
                            << record.topic << "/" << record.partition << "@"
                            << record.offset
                            << " failed: " << s.to_string());
  } else {
    PE_LOG_WARN("pipeline " << id_ << ": record " << record.topic << "/"
                            << record.partition << "@" << record.offset
                            << " dead-lettered after "
                            << failure.to_string());
  }
}

bool EdgeToCloudPipeline::work_finished() const {
  return producers_done_.load(std::memory_order_acquire) &&
         processed_.load() >= produced_.load();
}

Status EdgeToCloudPipeline::wait() {
  if (!running_.load()) return Status::FailedPrecondition("not running");
  // run_timeout is an *emulated* duration: divide by the time scale so a
  // failure scenario at 4x speed times out (or recovers) identically to
  // the same scenario in real time.
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Duration>(
                         config_.run_timeout / Clock::time_scale());
  // Wait for producers.
  for (auto& handle : producer_handles_) {
    const auto remaining = deadline - Clock::now();
    if (remaining <= Duration::zero() ||
        !handle.wait_for(std::chrono::duration_cast<Duration>(remaining))) {
      return Status::Timeout("producers did not finish in time");
    }
  }
  // Wait for the consumers to drain.
  while (!work_finished()) {
    if (Clock::now() >= deadline) {
      return Status::Timeout("processing did not drain in time");
    }
    Clock::sleep_exact(std::chrono::milliseconds(2));
  }
  // Consumers exit on their own once work_finished() holds. Snapshot the
  // handles under the lock: recovery may have appended re-spawned tasks.
  std::vector<exec::TaskHandle> handles;
  {
    MutexLock lock(pilots_mutex_);
    handles = processing_handles_;
  }
  for (auto& handle : handles) {
    handle.request_stop();
  }
  for (auto& handle : handles) {
    const auto remaining = deadline - Clock::now();
    if (remaining <= Duration::zero() ||
        !handle.wait_for(std::chrono::duration_cast<Duration>(remaining))) {
      return Status::Timeout("processing tasks did not stop in time");
    }
  }
  return Status::Ok();
}

void EdgeToCloudPipeline::stop() {
  if (!running_.exchange(false)) return;
  if (pilot_manager_ != nullptr && replacement_sub_token_ != 0) {
    pilot_manager_->unsubscribe_replacements(replacement_sub_token_);
    replacement_sub_token_ = 0;
  }
  std::vector<exec::TaskHandle> handles;
  {
    MutexLock lock(pilots_mutex_);
    handles = processing_handles_;
  }
  for (auto& handle : producer_handles_) handle.request_stop();
  for (auto& handle : handles) handle.request_stop();
  for (auto& handle : producer_handles_) {
    (void)handle.wait_for(std::chrono::seconds(30));
  }
  for (auto& handle : handles) {
    (void)handle.wait_for(std::chrono::seconds(30));
  }
  if (mqtt_bridge_) {
    mqtt_bridge_->shutdown();
    mqtt_bridge_.reset();
  }
  mqtt_broker_.reset();
}

PipelineRunReport EdgeToCloudPipeline::report(const std::string& label) const {
  PipelineRunReport out;
  if (collector_) {
    out.run = tel::build_report(collector_->completed(),
                                label.empty() ? id_ : label);
  }
  out.messages_produced = produced_.load();
  out.messages_processed = processed_.load();
  out.outliers_detected = outliers_.load();
  out.processing_errors = errors_.load();
  out.duplicates_skipped = duplicates_.load();
  out.messages_dead_lettered = dead_lettered_.load();
  out.pilot_recoveries = recoveries_.load();
  if (broker_) out.broker = broker_->stats();
  if (param_server_) out.parameter_server = param_server_->stats();
  return out;
}

Result<PipelineRunReport> EdgeToCloudPipeline::run() {
  if (auto s = start(); !s.ok()) return s;
  const Status wait_status = wait();
  stop();
  PipelineRunReport out = report();
  out.status = wait_status;
  if (!wait_status.ok() &&
      wait_status.code() != StatusCode::kTimeout) {
    return wait_status;
  }
  return out;
}

std::shared_ptr<ps::ParameterServer> EdgeToCloudPipeline::parameter_server()
    const {
  return param_server_;
}

}  // namespace pe::core
