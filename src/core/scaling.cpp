#include "core/scaling.h"

#include "common/logging.h"

namespace pe::core {

BacklogAutoScaler::BacklogAutoScaler(AutoScalerConfig config)
    : config_(config) {}

BacklogAutoScaler::~BacklogAutoScaler() { stop(); }

Status BacklogAutoScaler::start(EdgeToCloudPipeline& pipeline) {
  if (running_.exchange(true)) {
    return Status::FailedPrecondition("scaler already running");
  }
  if (!pipeline.running()) {
    running_.store(false);
    return Status::FailedPrecondition("pipeline not running");
  }
  thread_ = std::thread([this, &pipeline] { run(&pipeline); });
  return Status::Ok();
}

void BacklogAutoScaler::stop() {
  if (!running_.exchange(false)) return;
  if (thread_.joinable()) thread_.join();
}

void BacklogAutoScaler::run(EdgeToCloudPipeline* pipeline) {
  std::size_t breaches = 0;
  while (running_.load(std::memory_order_acquire) && pipeline->running()) {
    const std::uint64_t produced = pipeline->messages_produced();
    const std::uint64_t processed = pipeline->messages_processed();
    const std::uint64_t backlog =
        produced > processed ? produced - processed : 0;

    if (backlog >= config_.backlog_high_watermark) {
      breaches += 1;
    } else {
      breaches = 0;
    }

    if (breaches >= config_.consecutive_breaches &&
        added_.load() < config_.max_added_tasks) {
      const std::size_t step = std::min(
          config_.step, config_.max_added_tasks - added_.load());
      if (auto s = pipeline->scale_processing(step); s.ok()) {
        added_.fetch_add(step);
        {
          MutexLock lock(events_mutex_);
          events_.push_back(ScaleEvent{Clock::now_ns(), backlog, step});
        }
        PE_LOG_INFO("auto-scaler: backlog " << backlog << " -> added "
                                            << step << " processing task(s)");
      } else {
        PE_LOG_WARN("auto-scaler: scale_processing failed: "
                    << s.to_string());
      }
      breaches = 0;
    }
    Clock::sleep_scaled(config_.check_interval);
  }
}

std::vector<ScaleEvent> BacklogAutoScaler::events() const {
  MutexLock lock(events_mutex_);
  return events_;
}

}  // namespace pe::core
