// The Pilot-Edge FaaS API (paper Listing 1).
//
//   def produce_edge(context)                      -> ProduceFn
//   def process_edge(context, data)                -> ProcessFn
//   def process_cloud(context, data)               -> ProcessFn
//
// Data flows as DataBlocks: produce functions create them, process
// functions transform them (edge: pre-aggregation / compression; cloud:
// training + inference). A ProcessResult can carry per-row anomaly scores
// in addition to the forwarded block.
//
// Because processing tasks are long-running and stateful (each keeps its
// own model replica), cloud/edge handlers are supplied as *factories*:
// the pipeline calls the factory once per processing task to get that
// task's private ProcessFn. A convenience adapter turns a plain stateless
// ProcessFn into a factory.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/status.h"
#include "core/context.h"
#include "data/block.h"

namespace pe::core {

/// Output of a process function.
struct ProcessResult {
  /// Block to forward downstream (or final block for the last stage).
  data::DataBlock block;
  /// Optional per-row anomaly scores (size == block.rows when present).
  std::vector<double> scores;
  /// Number of rows flagged anomalous by the function's own threshold.
  std::size_t outliers = 0;
};

/// Sensing/data-generation function deployed on the edge. Returns one
/// block per invocation (message_id/producer/timestamp stamped by the
/// runtime). Returning CANCELLED ends the producer early.
using ProduceFn = std::function<Result<data::DataBlock>(FunctionContext&)>;

/// Processing function (edge or cloud).
using ProcessFn =
    std::function<Result<ProcessResult>(FunctionContext&, data::DataBlock)>;

/// Factory invoked once per processing task (stateful handlers).
using ProcessFnFactory = std::function<ProcessFn()>;

/// Factory invoked once per edge device; the index distinguishes devices
/// (e.g. to seed independent data generators).
using ProduceFnFactory = std::function<ProduceFn(std::size_t device_index)>;

/// Adapts a stateless/shared ProcessFn into a factory.
inline ProcessFnFactory shared_process_fn(ProcessFn fn) {
  return [fn = std::move(fn)]() { return fn; };
}

/// Adapts a device-agnostic ProduceFn into a factory.
inline ProduceFnFactory shared_produce_fn(ProduceFn fn) {
  return [fn = std::move(fn)](std::size_t) { return fn; };
}

}  // namespace pe::core
