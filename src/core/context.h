// FunctionContext: what Pilot-Edge passes into every user function.
//
// The C++ rendering of the paper's `context: dict` parameter (Listing 1):
// application configuration, identity of the executing task/device, and a
// handle to the shared parameter service for cross-continuum state
// ("Further information on the resource topology and shared state are via
// a context object").
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "common/config.h"
#include "network/site.h"
#include "paramserver/client.h"

namespace pe::core {

class FunctionContext {
 public:
  FunctionContext() = default;

  /// Application-supplied configuration (Listing 2: function_context).
  ConfigMap& params() { return params_; }
  const ConfigMap& params() const { return params_; }

  /// Pipeline this invocation belongs to (the "unique job identifier" the
  /// paper uses to track progress across components).
  const std::string& pipeline_id() const { return pipeline_id_; }
  /// Stable id of the producing device or processing task.
  const std::string& task_id() const { return task_id_; }
  /// Site the function is executing on.
  const net::SiteId& site() const { return site_; }
  /// Sequence number of the current invocation on this task (0-based).
  std::uint64_t invocation() const { return invocation_; }

  /// Shared-state client (null when the pipeline runs without a parameter
  /// service).
  ps::ParameterClient* parameter_client() const {
    return parameter_client_.get();
  }

  /// Cooperative stop flag of the surrounding streaming task.
  bool stop_requested() const {
    return stop_ && stop_->load(std::memory_order_acquire);
  }

  // --- wiring (used by the pipeline runtime) ---
  void bind(std::string pipeline_id, std::string task_id, net::SiteId site,
            std::shared_ptr<ps::ParameterClient> parameter_client,
            std::shared_ptr<std::atomic<bool>> stop) {
    pipeline_id_ = std::move(pipeline_id);
    task_id_ = std::move(task_id);
    site_ = std::move(site);
    parameter_client_ = std::move(parameter_client);
    stop_ = std::move(stop);
  }
  void set_invocation(std::uint64_t n) { invocation_ = n; }

 private:
  ConfigMap params_;
  std::string pipeline_id_;
  std::string task_id_;
  net::SiteId site_;
  std::uint64_t invocation_ = 0;
  std::shared_ptr<ps::ParameterClient> parameter_client_;
  std::shared_ptr<std::atomic<bool>> stop_;
};

}  // namespace pe::core
