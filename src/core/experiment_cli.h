// Command-line experiment runner.
//
// Lets a user drive any single-pipeline experiment from flags — the
// "characterization" workflow of the paper without writing C++:
//
//   pilot_edge_run --devices 4 --messages 64 --points 1000 \
//       --model kmeans --topology geo --mode hybrid --aggregate 8 \
//       --json out.json
//
// The parser is exposed separately so it is unit-testable.
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "core/pipeline.h"

namespace pe::core::cli {

struct Options {
  std::size_t devices = 2;
  std::size_t messages_per_device = 16;
  std::size_t points = 1000;
  std::uint32_t partitions = 0;  // 0 = one per device
  std::size_t processing_tasks = 0;
  std::string model = "kmeans";
  /// "cloud" | "hybrid" | "edge"
  std::string mode = "cloud";
  std::size_t aggregate_window = 8;  // hybrid edge aggregation factor
  /// "single" (all on LRZ) | "geo" (paper's US->EU WAN)
  std::string topology = "single";
  /// "direct" | "mqtt"
  std::string ingest = "direct";
  double time_scale = 1.0;
  std::uint64_t produce_interval_ms = 0;
  std::string json_path;  // write the run report as JSON here
  std::string csv_path;   // append a CSV row here
  bool verbose = false;
  bool help = false;
};

/// Parses argv; returns INVALID_ARGUMENT with a message on bad flags.
Result<Options> parse(int argc, const char* const* argv);

/// Usage text for --help / parse errors.
std::string usage();

/// Builds the testbed, runs the experiment, prints/writes reports.
/// Returns the process exit code.
int run(const Options& options);

}  // namespace pe::core::cli
