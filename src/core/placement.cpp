#include "core/placement.h"

#include <sstream>

namespace pe::core {
namespace {

/// Transfer time of `bytes` across the edge->cloud path, in ms.
Result<double> transfer_ms(const net::Fabric& fabric,
                           const net::SiteId& from, const net::SiteId& to,
                           double bytes) {
  auto latency = fabric.estimated_latency(from, to);
  if (!latency.ok()) return latency.status();
  auto bandwidth = fabric.estimated_bandwidth_bps(from, to);
  if (!bandwidth.ok()) return bandwidth.status();
  const double lat_ms =
      std::chrono::duration<double, std::milli>(latency.value()).count();
  const double tx_ms = bytes * 8.0 / bandwidth.value() * 1e3;
  return lat_ms + tx_ms;
}

}  // namespace

Result<PlacementRecommendation> recommend_placement(
    const net::Fabric& fabric, const PlacementFactors& f) {
  PlacementRecommendation rec;
  const auto bytes = static_cast<double>(f.message_bytes);

  // Cloud-centric: full message over the WAN, full compute on cloud.
  auto full = transfer_ms(fabric, f.edge_site, f.cloud_site, bytes);
  if (!full.ok()) return full.status();
  rec.cloud_centric = {DeploymentMode::kCloudCentric, full.value(),
                       f.cloud_compute_ms};

  // Edge-centric: compute on the device (slower), ship a tiny result
  // summary (1% of the payload, floor 256 bytes).
  const double result_bytes = std::max(256.0, bytes * 0.01);
  auto summary = transfer_ms(fabric, f.edge_site, f.cloud_site, result_bytes);
  if (!summary.ok()) return summary.status();
  rec.edge_centric = {DeploymentMode::kEdgeCentric, summary.value(),
                      f.cloud_compute_ms * f.edge_slowdown};

  // Hybrid: cheap reduction on the edge, reduced payload over the WAN,
  // full compute on the (reduced) data in the cloud. Compute shrinks with
  // the data reduction for the per-row models used here.
  auto reduced = transfer_ms(fabric, f.edge_site, f.cloud_site,
                             bytes * f.reduction_ratio);
  if (!reduced.ok()) return reduced.status();
  rec.hybrid = {DeploymentMode::kHybrid, reduced.value(),
                f.reduction_ms + f.cloud_compute_ms * f.reduction_ratio};

  rec.best = DeploymentMode::kCloudCentric;
  double best = rec.cloud_centric.total_ms();
  if (rec.hybrid.total_ms() < best) {
    best = rec.hybrid.total_ms();
    rec.best = DeploymentMode::kHybrid;
  }
  if (rec.edge_centric.total_ms() < best) {
    rec.best = DeploymentMode::kEdgeCentric;
  }
  return rec;
}

std::string PlacementRecommendation::to_string() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(2);
  auto line = [&](const PlacementEstimate& e) {
    oss << "  " << core::to_string(e.mode) << ": transfer " << e.transfer_ms
        << " ms + compute " << e.compute_ms << " ms = " << e.total_ms()
        << " ms\n";
  };
  oss << "placement recommendation: " << core::to_string(best) << "\n";
  line(cloud_centric);
  line(edge_centric);
  line(hybrid);
  return oss.str();
}

}  // namespace pe::core
