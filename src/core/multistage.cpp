#include "core/multistage.h"

#include <sstream>

#include "broker/consumer.h"
#include "broker/producer.h"
#include "common/ids.h"
#include "common/logging.h"
#include "data/codec.h"

namespace pe::core {

MultiStagePipeline::MultiStagePipeline(MultiStageConfig config)
    : id_(next_pipeline_id()), config_(std::move(config)) {}

MultiStagePipeline::~MultiStagePipeline() { stop_all(); }

MultiStagePipeline& MultiStagePipeline::set_fabric(
    std::shared_ptr<net::Fabric> fabric) {
  fabric_ = std::move(fabric);
  return *this;
}
MultiStagePipeline& MultiStagePipeline::set_pilot_broker(res::PilotPtr p) {
  broker_pilot_ = std::move(p);
  return *this;
}
MultiStagePipeline& MultiStagePipeline::set_pilot_edge(res::PilotPtr p) {
  edge_pilot_ = std::move(p);
  return *this;
}
MultiStagePipeline& MultiStagePipeline::set_produce_function(
    ProduceFnFactory f) {
  produce_factory_ = std::move(f);
  return *this;
}
MultiStagePipeline& MultiStagePipeline::add_stage(StageSpec stage) {
  stages_.push_back(std::move(stage));
  return *this;
}

Status MultiStagePipeline::validate() const {
  if (!fabric_) return Status::InvalidArgument("no fabric");
  if (!broker_pilot_) return Status::InvalidArgument("no broker pilot");
  if (!edge_pilot_) return Status::InvalidArgument("no edge pilot");
  if (!produce_factory_) return Status::InvalidArgument("no produce fn");
  if (stages_.empty()) return Status::InvalidArgument("no stages");
  for (const auto& stage : stages_) {
    if (!stage.pilot) {
      return Status::InvalidArgument("stage '" + stage.name + "' has no pilot");
    }
    if (!stage.process) {
      return Status::InvalidArgument("stage '" + stage.name +
                                     "' has no process function");
    }
  }
  if (config_.edge_devices == 0) {
    return Status::InvalidArgument("need >= 1 device");
  }
  return Status::Ok();
}

std::string MultiStagePipeline::topic_name(std::size_t stage) const {
  return config_.topic_prefix + "-" + id_ + "-" + std::to_string(stage);
}

Status MultiStagePipeline::producer_body(exec::TaskContext& tctx,
                                         std::size_t device_index) {
  const std::string device_id = "device-" + std::to_string(device_index);
  ProduceFn produce = produce_factory_(device_index);
  broker::Producer producer(broker_, fabric_, edge_pilot_->site());
  FunctionContext fctx;
  fctx.params().merge_from(config_.function_context);
  fctx.bind(id_, device_id, edge_pilot_->site(), nullptr, tctx.stop_flag());
  const auto partition =
      static_cast<std::uint32_t>(device_index % effective_partitions_);

  for (std::size_t m = 0; m < config_.messages_per_device; ++m) {
    if (tctx.stop_requested()) return Status::Cancelled("stopped");
    fctx.set_invocation(m);
    auto block_result = produce(fctx);
    if (!block_result.ok()) {
      if (block_result.status().code() == StatusCode::kCancelled) break;
      return block_result.status();
    }
    data::DataBlock block = std::move(block_result).value();
    block.message_id = next_message_id();
    block.producer_id = device_id;
    block.produced_ns = Clock::now_ns();
    collector_->on_produced(block.message_id, device_id, partition,
                            block.value_bytes(), block.rows,
                            block.produced_ns);
    broker::Record record;
    record.key = device_id;
    record.client_timestamp_ns = block.produced_ns;
    record.value = data::Codec::encode_shared(block);
    auto meta = producer.send(topic_name(0), partition, std::move(record));
    if (!meta.ok()) return meta.status();
    produced_.fetch_add(1);
    if (config_.produce_interval > Duration::zero()) {
      Clock::sleep_scaled(config_.produce_interval);
    }
  }
  return Status::Ok();
}

Status MultiStagePipeline::stage_body(exec::TaskContext& tctx,
                                      std::size_t stage_index,
                                      std::size_t task_index) {
  StageState& state = *stage_states_[stage_index];
  const StageSpec& spec = stages_[stage_index];
  const net::SiteId site = spec.pilot->site();
  const bool last_stage = stage_index + 1 == stages_.size();

  ProcessFn process = spec.process();
  broker::ConsumerConfig consumer_config;
  consumer_config.max_poll_records = 16;
  broker::Consumer consumer(broker_, fabric_, site,
                            "g-" + id_ + "-" + std::to_string(stage_index),
                            consumer_config);
  if (auto s = consumer.subscribe({topic_name(stage_index)}); !s.ok()) {
    state.running.fetch_sub(1);
    return s;
  }
  broker::Producer producer(broker_, fabric_, site);

  FunctionContext fctx;
  fctx.params().merge_from(config_.function_context);
  fctx.bind(id_, spec.name + "-" + std::to_string(task_index), site, nullptr,
            tctx.stop_flag());

  auto upstream_total = [&]() -> std::uint64_t {
    return stage_index == 0 ? produced_.load()
                            : stage_states_[stage_index - 1]->out.load();
  };
  auto finished = [&]() {
    return state.upstream_done.load(std::memory_order_acquire) &&
           state.in.load() >= upstream_total();
  };

  std::uint64_t invocation = 0;
  while (!tctx.stop_requested() && !finished()) {
    auto records = consumer.poll(config_.poll_timeout);
    for (auto& record : records) {
      auto decoded = data::Codec::decode(record.record.value);
      if (!decoded.ok()) {
        state.errors.fetch_add(1);
        state.in.fetch_add(1);
        continue;
      }
      data::DataBlock block = std::move(decoded).value();
      {
        MutexLock lock(state.seen_mutex);
        if (!state.seen.insert(block.message_id).second) continue;
      }
      state.in.fetch_add(1);

      fctx.set_invocation(invocation++);
      const std::uint64_t message_id = block.message_id;
      const Stopwatch sw;
      auto result = process(fctx, std::move(block));
      state.processing_ms.record(sw.elapsed_ms());
      if (!result.ok()) {
        state.errors.fetch_add(1);
        continue;
      }
      if (last_stage) {
        // produced_ns + process_end_ns complete the span; the chain's
        // end-to-end latency is all the report needs.
        collector_->on_process_end(message_id, Clock::now_ns());
        state.out.fetch_add(1);
      } else {
        data::DataBlock forward = std::move(result.value().block);
        forward.message_id = message_id;  // identity survives the chain
        broker::Record record_out;
        record_out.key = forward.producer_id;
        record_out.client_timestamp_ns = forward.produced_ns;
        record_out.value = data::Codec::encode_shared(forward);
        auto partition = broker_->select_partition(
            topic_name(stage_index + 1), record_out);
        if (!partition.ok()) {
          state.errors.fetch_add(1);
          continue;
        }
        auto meta = producer.send(topic_name(stage_index + 1),
                                  partition.value(), std::move(record_out));
        if (!meta.ok()) {
          state.errors.fetch_add(1);
          continue;
        }
        state.out.fetch_add(1);
      }
      if (tctx.stop_requested()) break;
    }
  }

  // Last task out closes the door for the next stage.
  if (state.running.fetch_sub(1) == 1 && !last_stage) {
    stage_states_[stage_index + 1]->upstream_done.store(
        true, std::memory_order_release);
  }
  return Status::Ok();
}

Result<MultiStageReport> MultiStagePipeline::run() {
  if (started_) return Status::FailedPrecondition("already ran");
  if (auto s = validate(); !s.ok()) return s;
  started_ = true;

  if (auto s = broker_pilot_->wait_active(); !s.ok()) return s;
  if (auto s = edge_pilot_->wait_active(); !s.ok()) return s;
  for (const auto& stage : stages_) {
    if (auto s = stage.pilot->wait_active(); !s.ok()) return s;
  }
  broker_ = broker_pilot_->broker();
  if (!broker_) return Status::InvalidArgument("broker pilot has no broker");

  effective_partitions_ =
      config_.partitions != 0
          ? config_.partitions
          : static_cast<std::uint32_t>(config_.edge_devices);
  for (std::size_t t = 0; t < stages_.size(); ++t) {
    broker::TopicConfig topic_config;
    topic_config.partitions = effective_partitions_;
    if (auto s = broker_->create_topic(topic_name(t), topic_config);
        !s.ok() && s.code() != StatusCode::kAlreadyExists) {
      return s;
    }
  }

  collector_ = std::make_shared<tel::SpanCollector>();
  stage_states_.clear();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    stage_states_.push_back(std::make_unique<StageState>());
  }

  // Start stage tasks from the last stage backwards so every consumer is
  // polling before data arrives.
  for (std::size_t i = stages_.size(); i-- > 0;) {
    const std::size_t tasks =
        stages_[i].tasks != 0 ? stages_[i].tasks : effective_partitions_;
    stage_states_[i]->running.store(tasks);
    auto cluster = stages_[i].pilot->cluster();
    if (!cluster) return Status::Internal("stage pilot without cluster");
    for (std::size_t t = 0; t < tasks; ++t) {
      exec::TaskSpec spec;
      spec.name = id_ + "-" + stages_[i].name + "-" + std::to_string(t);
      spec.cores = 1;
      spec.fn = [this, i, t](exec::TaskContext& tctx) {
        return stage_body(tctx, i, t);
      };
      auto handle = cluster->submit(std::move(spec));
      if (!handle.ok()) {
        stop_all();
        return handle.status();
      }
      handles_.push_back(std::move(handle).value());
    }
  }

  // Producers.
  producers_running_.store(config_.edge_devices);
  auto edge_cluster = edge_pilot_->cluster();
  if (!edge_cluster) return Status::Internal("edge pilot without cluster");
  for (std::size_t d = 0; d < config_.edge_devices; ++d) {
    exec::TaskSpec spec;
    spec.name = id_ + "-device-" + std::to_string(d);
    spec.cores = 1;
    spec.fn = [this, d](exec::TaskContext& tctx) {
      auto status = producer_body(tctx, d);
      if (producers_running_.fetch_sub(1) == 1) {
        stage_states_[0]->upstream_done.store(true,
                                              std::memory_order_release);
      }
      return status;
    };
    auto handle = edge_cluster->submit(std::move(spec));
    if (!handle.ok()) {
      stop_all();
      return handle.status();
    }
    handles_.push_back(std::move(handle).value());
  }

  // Wait for everything, bounded by the run timeout (an emulated
  // duration — scale the wall deadline so time-scaled runs behave the
  // same).
  const auto deadline =
      Clock::now() + std::chrono::duration_cast<Duration>(
                         config_.run_timeout / Clock::time_scale());
  Status run_status = Status::Ok();
  for (auto& handle : handles_) {
    const auto remaining = deadline - Clock::now();
    if (remaining <= Duration::zero() ||
        !handle.wait_for(std::chrono::duration_cast<Duration>(remaining))) {
      run_status = Status::Timeout("multi-stage run exceeded timeout");
      stop_all();
      break;
    }
  }

  MultiStageReport report;
  report.status = run_status;
  report.messages_produced = produced_.load();
  report.messages_completed = stage_states_.back()->out.load();
  Histogram e2e;
  for (const auto& span : collector_->completed()) {
    e2e.record(span.end_to_end_ms());
  }
  report.end_to_end_ms = e2e.summary();
  for (std::size_t i = 0; i < stages_.size(); ++i) {
    StageReport stage;
    stage.name = stages_[i].name;
    stage.messages_in = stage_states_[i]->in.load();
    stage.messages_out = stage_states_[i]->out.load();
    stage.errors = stage_states_[i]->errors.load();
    stage.processing_ms = stage_states_[i]->processing_ms.summary();
    report.stages.push_back(std::move(stage));
  }
  return report;
}

void MultiStagePipeline::stop_all() {
  for (auto& handle : handles_) handle.request_stop();
  for (auto& handle : handles_) {
    (void)handle.wait_for(std::chrono::seconds(30));
  }
}

std::string MultiStageReport::to_string() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(2);
  oss << "multi-stage run: " << messages_produced << " produced, "
      << messages_completed << " completed chain; e2e "
      << end_to_end_ms.mean << " ms mean (p99 " << end_to_end_ms.p99
      << ")\n";
  for (const auto& stage : stages) {
    oss << "  stage " << stage.name << ": in " << stage.messages_in
        << ", out " << stage.messages_out << ", errors " << stage.errors
        << ", proc " << stage.processing_ms.mean << " ms\n";
  }
  return oss.str();
}

}  // namespace pe::core
