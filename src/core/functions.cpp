#include "core/functions.h"

#include <memory>

#include "common/logging.h"
#include "ml/outlier.h"

namespace pe::core::functions {

ProduceFnFactory make_generator_produce(data::GeneratorConfig config,
                                        std::size_t rows_per_message) {
  return [config, rows_per_message](std::size_t device_index) -> ProduceFn {
    data::GeneratorConfig device_config = config;
    device_config.seed = config.seed + device_index;
    auto generator = std::make_shared<data::Generator>(device_config);
    return [generator, rows_per_message](FunctionContext&)
               -> Result<data::DataBlock> {
      return generator->generate(rows_per_message);
    };
  };
}

ProduceFnFactory make_seasonal_produce(data::SeasonalConfig config,
                                       std::size_t rows_per_message) {
  return [config, rows_per_message](std::size_t device_index) -> ProduceFn {
    data::SeasonalConfig device_config = config;
    device_config.seed = config.seed + device_index * 131;
    auto generator =
        std::make_shared<data::SeasonalGenerator>(device_config);
    return [generator, rows_per_message](FunctionContext&)
               -> Result<data::DataBlock> {
      return generator->generate(rows_per_message);
    };
  };
}

ProcessFnFactory make_passthrough_process() {
  return []() -> ProcessFn {
    return [](FunctionContext&, data::DataBlock block)
               -> Result<ProcessResult> {
      ProcessResult result;
      result.block = std::move(block);
      return result;
    };
  };
}

ProcessFnFactory make_aggregate_edge(std::size_t window) {
  if (window == 0) window = 1;
  return [window]() -> ProcessFn {
    return [window](FunctionContext&, data::DataBlock block)
               -> Result<ProcessResult> {
      if (!block.valid()) return Status::InvalidArgument("invalid block");
      ProcessResult result;
      if (window == 1 || block.rows == 0) {
        result.block = std::move(block);
        return result;
      }
      data::DataBlock out;
      out.message_id = block.message_id;
      out.producer_id = block.producer_id;
      out.produced_ns = block.produced_ns;
      out.cols = block.cols;
      out.rows = (block.rows + window - 1) / window;
      out.values.assign(out.rows * out.cols, 0.0);
      const bool labels = block.has_labels();
      if (labels) out.labels.assign(out.rows, 0);
      for (std::size_t r = 0; r < block.rows; ++r) {
        const std::size_t g = r / window;
        const auto src = block.row(r);
        double* dst = out.values.data() + g * out.cols;
        for (std::size_t f = 0; f < out.cols; ++f) dst[f] += src[f];
        if (labels && block.labels[r] != 0) out.labels[g] = 1;
      }
      for (std::size_t g = 0; g < out.rows; ++g) {
        const std::size_t members =
            std::min(window, block.rows - g * window);
        double* dst = out.values.data() + g * out.cols;
        for (std::size_t f = 0; f < out.cols; ++f) {
          dst[f] /= static_cast<double>(members);
        }
      }
      result.block = std::move(out);
      return result;
    };
  };
}

ProcessFnFactory make_model_process(ml::ModelKind kind, ConfigMap model_config,
                                    ModelProcessOptions options) {
  return [kind, model_config, options]() -> ProcessFn {
    auto model = std::shared_ptr<ml::OutlierModel>(
        ml::make_model(kind, model_config));
    // Sliding training window (rows of recent blocks), when enabled.
    auto window = std::make_shared<data::DataBlock>();
    return [model, options, window](FunctionContext& ctx,
                                    data::DataBlock block)
               -> Result<ProcessResult> {
      if (!block.valid()) return Status::InvalidArgument("invalid block");

      // Optionally adopt the latest shared model before local training.
      if (!options.pull_key.empty() && ctx.parameter_client() != nullptr) {
        if (auto latest = ctx.parameter_client()->get(options.pull_key);
            latest.ok()) {
          if (auto s = model->load(latest.value().value); !s.ok()) {
            PE_LOG_WARN("model pull failed to load: " << s.to_string());
          }
        }
      }

      // Streaming training (paper: "the model is updated based on the
      // incoming data"), then inference on the same block. With a window,
      // training covers the most recent window_rows rows instead.
      if (options.window_rows > 0) {
        window->cols = block.cols;
        window->values.insert(window->values.end(), block.values.begin(),
                              block.values.end());
        window->rows += block.rows;
        if (window->rows > options.window_rows) {
          const std::size_t drop = window->rows - options.window_rows;
          window->values.erase(
              window->values.begin(),
              window->values.begin() +
                  static_cast<std::ptrdiff_t>(drop * window->cols));
          window->rows = options.window_rows;
        }
        if (auto s = model->partial_fit(*window); !s.ok()) return s;
      } else if (auto s = model->partial_fit(block); !s.ok()) {
        return s;
      }
      auto scores = model->score(block);
      if (!scores.ok()) return scores.status();

      ProcessResult result;
      result.scores = std::move(scores).value();
      const double threshold =
          ml::score_quantile(result.scores, 1.0 - options.contamination);
      for (double s : result.scores) {
        if (s >= threshold && s > 0.0) result.outliers += 1;
      }

      // Model exchange through the parameter service.
      if (options.publish_interval > 0 && ctx.parameter_client() != nullptr &&
          (ctx.invocation() + 1) % options.publish_interval == 0) {
        const std::string key = options.pull_key.empty()
                                    ? "model/" + ctx.task_id()
                                    : options.pull_key;
        if (auto s = ctx.parameter_client()->set(key, model->save());
            !s.ok()) {
          PE_LOG_WARN("model publish failed: " << s.status().to_string());
        }
      }

      result.block = std::move(block);
      return result;
    };
  };
}

}  // namespace pe::core::functions
