// BacklogAutoScaler: closes the paper's dynamism loop automatically.
//
// §V: "The ability to respond at runtime, e.g., by auto-scaling
// resources, is crucial." The scaler watches a running pipeline's backlog
// (messages produced but not yet processed) and adds processing tasks on
// the cloud pilot when the backlog stays above a threshold — the
// application-level scheduling reaction the paper envisions, without
// allocating new pilots.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/mutex.h"
#include "core/pipeline.h"

namespace pe::core {

struct AutoScalerConfig {
  Duration check_interval = std::chrono::milliseconds(100);
  /// Backlog (produced - processed) that counts as congestion.
  std::uint64_t backlog_high_watermark = 16;
  /// Consecutive congested checks before scaling out.
  std::size_t consecutive_breaches = 2;
  /// Tasks added per scale-out event.
  std::size_t step = 1;
  /// Upper bound on tasks this scaler may add in total.
  std::size_t max_added_tasks = 4;
};

/// One scale-out decision, for reports/tests.
struct ScaleEvent {
  std::uint64_t at_ns = 0;
  std::uint64_t backlog = 0;
  std::size_t tasks_added = 0;
};

class BacklogAutoScaler {
 public:
  explicit BacklogAutoScaler(AutoScalerConfig config = {});
  ~BacklogAutoScaler();

  BacklogAutoScaler(const BacklogAutoScaler&) = delete;
  BacklogAutoScaler& operator=(const BacklogAutoScaler&) = delete;

  /// Starts watching a pipeline (must already be running). The pipeline
  /// must outlive the scaler or stop() must be called first.
  Status start(EdgeToCloudPipeline& pipeline);
  void stop();

  std::vector<ScaleEvent> events() const;
  std::size_t tasks_added() const { return added_.load(); }

 private:
  void run(EdgeToCloudPipeline* pipeline);

  const AutoScalerConfig config_;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> added_{0};
  mutable Mutex events_mutex_{"core.scaler.events"};
  std::vector<ScaleEvent> events_ PE_GUARDED_BY(events_mutex_);
  std::thread thread_;
};

}  // namespace pe::core
