// Deployment modes and the task-placement advisor.
//
// The paper (§II-D, §III-2, and its companion emulation study [8])
// distinguishes cloud-centric, edge-centric, and hybrid deployments. The
// advisor estimates per-message cost of each mode from the factors the
// paper names — message size, model complexity, and link quality — and
// recommends a placement. Applications stay free to override.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "network/fabric.h"

namespace pe::core {

enum class DeploymentMode {
  kCloudCentric,  // raw data to the cloud; all processing there
  kEdgeCentric,   // score on the device; ship only results
  kHybrid,        // reduce/compress on the edge, heavy processing in cloud
};

constexpr const char* to_string(DeploymentMode m) {
  switch (m) {
    case DeploymentMode::kCloudCentric: return "cloud-centric";
    case DeploymentMode::kEdgeCentric: return "edge-centric";
    case DeploymentMode::kHybrid: return "hybrid";
  }
  return "?";
}

/// Inputs to the placement estimate.
struct PlacementFactors {
  std::uint64_t message_bytes = 0;
  /// Estimated model compute per message on a cloud core (ms).
  double cloud_compute_ms = 0.0;
  /// Slowdown of the edge device vs a cloud core for the same model
  /// (RasPi-class vs server core; >= 1).
  double edge_slowdown = 4.0;
  /// Bytes remaining after edge reduction, as a fraction (hybrid mode).
  double reduction_ratio = 0.25;
  /// Extra edge compute for the reduction step (ms).
  double reduction_ms = 1.0;
  net::SiteId edge_site;
  net::SiteId cloud_site;
};

/// Estimated per-message cost of one mode.
struct PlacementEstimate {
  DeploymentMode mode = DeploymentMode::kCloudCentric;
  double transfer_ms = 0.0;
  double compute_ms = 0.0;
  double total_ms() const { return transfer_ms + compute_ms; }
};

struct PlacementRecommendation {
  DeploymentMode best = DeploymentMode::kCloudCentric;
  PlacementEstimate cloud_centric;
  PlacementEstimate edge_centric;
  PlacementEstimate hybrid;

  std::string to_string() const;
};

/// Scores all three modes against the fabric's link estimates.
Result<PlacementRecommendation> recommend_placement(
    const net::Fabric& fabric, const PlacementFactors& factors);

}  // namespace pe::core
