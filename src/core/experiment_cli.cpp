#include "core/experiment_cli.h"

#include <cstdio>
#include <fstream>
#include <map>

#include "common/logging.h"
#include "core/functions.h"
#include "resource/pilot_manager.h"
#include "telemetry/json.h"

namespace pe::core::cli {

std::string usage() {
  return R"(pilot_edge_run — run one Pilot-Edge experiment from flags

  --devices N              simulated edge devices            (default 2)
  --messages N             messages per device               (default 16)
  --points N               points per message (x32 features) (default 1000)
  --partitions N           topic partitions (0 = per device) (default 0)
  --processing-tasks N     cloud tasks (0 = per partition)   (default 0)
  --model NAME             baseline|kmeans|iforest|ae        (default kmeans)
  --mode MODE              cloud|hybrid|edge                 (default cloud)
  --aggregate W            hybrid edge aggregation window    (default 8)
  --topology T             single|geo                        (default single)
  --ingest I               direct|mqtt                       (default direct)
  --time-scale X           WAN emulation speed-up            (default 1.0)
  --produce-interval-ms N  pacing between messages           (default 0)
  --json PATH              write the run report as JSON
  --csv PATH               append a CSV row
  --verbose                info-level logging
  --help                   this text
)";
}

Result<Options> parse(int argc, const char* const* argv) {
  Options options;
  auto need_value = [&](int& i) -> Result<std::string> {
    if (i + 1 >= argc) {
      return Status::InvalidArgument(std::string(argv[i]) +
                                     " requires a value");
    }
    return std::string(argv[++i]);
  };

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      options.help = true;
      return options;
    }
    if (arg == "--verbose") {
      options.verbose = true;
      continue;
    }
    auto value = need_value(i);
    if (!value.ok()) return value.status();
    const std::string& v = value.value();
    auto as_size = [&]() -> Result<std::size_t> {
      try {
        return static_cast<std::size_t>(std::stoull(v));
      } catch (...) {
        return Status::InvalidArgument("bad number for " + arg + ": " + v);
      }
    };
    if (arg == "--devices") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.devices = n.value();
    } else if (arg == "--messages") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.messages_per_device = n.value();
    } else if (arg == "--points") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.points = n.value();
    } else if (arg == "--partitions") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.partitions = static_cast<std::uint32_t>(n.value());
    } else if (arg == "--processing-tasks") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.processing_tasks = n.value();
    } else if (arg == "--aggregate") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.aggregate_window = n.value();
    } else if (arg == "--produce-interval-ms") {
      auto n = as_size();
      if (!n.ok()) return n.status();
      options.produce_interval_ms = n.value();
    } else if (arg == "--model") {
      options.model = v;
    } else if (arg == "--mode") {
      if (v != "cloud" && v != "hybrid" && v != "edge") {
        return Status::InvalidArgument("unknown mode '" + v + "'");
      }
      options.mode = v;
    } else if (arg == "--topology") {
      if (v != "single" && v != "geo") {
        return Status::InvalidArgument("unknown topology '" + v + "'");
      }
      options.topology = v;
    } else if (arg == "--ingest") {
      if (v != "direct" && v != "mqtt") {
        return Status::InvalidArgument("unknown ingest '" + v + "'");
      }
      options.ingest = v;
    } else if (arg == "--time-scale") {
      try {
        options.time_scale = std::stod(v);
      } catch (...) {
        return Status::InvalidArgument("bad time scale: " + v);
      }
      if (options.time_scale <= 0.0) {
        return Status::InvalidArgument("time scale must be > 0");
      }
    } else if (arg == "--json") {
      options.json_path = v;
    } else if (arg == "--csv") {
      options.csv_path = v;
    } else {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    }
  }
  if (options.devices == 0) {
    return Status::InvalidArgument("--devices must be >= 1");
  }
  if (auto kind = ml::parse_model_kind(options.model); !kind.ok()) {
    return kind.status();
  }
  return options;
}

int run(const Options& options) {
  if (options.help) {
    std::fputs(usage().c_str(), stdout);
    return 0;
  }
  Logger::set_level(options.verbose ? LogLevel::kInfo : LogLevel::kWarn);
  Clock::set_time_scale(options.time_scale);

  // Topology + pilots.
  const bool geo = options.topology == "geo";
  auto fabric = geo ? net::Fabric::make_paper_topology()
                    : net::Fabric::make_single_site_topology();
  const net::SiteId edge_site = geo ? "edge-us" : "lrz-eu";
  const net::SiteId cloud_site = "lrz-eu";

  res::PilotManagerOptions pm_options;
  pm_options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, pm_options);
  auto edge = pm.submit(res::Flavors::make(
      edge_site, res::Backend::kCloudVm,
      static_cast<std::uint32_t>(options.devices),
      4.0 * static_cast<double>(options.devices)));
  auto cloud = pm.submit(res::Flavors::lrz_large(cloud_site));
  auto broker = pm.submit(res::Flavors::make(
      cloud_site, res::Backend::kBrokerService, 4, 16.0));
  if (!edge.ok() || !cloud.ok() || !broker.ok()) {
    std::fprintf(stderr, "pilot submission failed\n");
    return 1;
  }
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "pilot acquisition failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }

  // Pipeline.
  PipelineConfig config;
  config.edge_devices = options.devices;
  config.messages_per_device = options.messages_per_device;
  config.rows_per_message = options.points;
  config.partitions = options.partitions;
  config.processing_tasks = options.processing_tasks;
  config.produce_interval =
      std::chrono::milliseconds(options.produce_interval_ms);
  config.run_timeout = std::chrono::hours(2);
  if (options.ingest == "mqtt") config.ingest = IngestPath::kMqttBridge;
  if (options.mode == "hybrid") config.mode = DeploymentMode::kHybrid;
  if (options.mode == "edge") config.mode = DeploymentMode::kEdgeCentric;

  const auto kind = ml::parse_model_kind(options.model).value();
  EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric)
      .set_pilot_edge(edge.value())
      .set_pilot_cloud_processing(cloud.value())
      .set_pilot_cloud_broker(broker.value())
      .set_produce_function(
          functions::make_generator_produce({}, options.points));
  if (config.mode != DeploymentMode::kCloudCentric) {
    pipeline.set_process_edge_function(
        functions::make_aggregate_edge(options.aggregate_window));
  }
  pipeline.set_process_cloud_function(
      kind == ml::ModelKind::kBaseline
          ? functions::make_passthrough_process()
          : functions::make_model_process(kind));

  std::printf("running: %zu device(s) x %zu msg x %zu points, model %s, "
              "%s topology, %s ingest, mode %s\n",
              options.devices, options.messages_per_device, options.points,
              options.model.c_str(), options.topology.c_str(),
              options.ingest.c_str(), options.mode.c_str());
  auto report = pipeline.run();
  Clock::set_time_scale(1.0);
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }
  std::printf("\n%s", report.value().run.to_string().c_str());
  std::printf("outliers: %llu | errors: %llu | duplicates skipped: %llu\n",
              static_cast<unsigned long long>(report.value().outliers_detected),
              static_cast<unsigned long long>(report.value().processing_errors),
              static_cast<unsigned long long>(report.value().duplicates_skipped));

  if (!options.json_path.empty()) {
    std::ofstream out(options.json_path);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.json_path.c_str());
      return 1;
    }
    out << tel::to_json(report.value().run) << "\n";
    std::printf("report written to %s\n", options.json_path.c_str());
  }
  if (!options.csv_path.empty()) {
    const bool fresh = !std::ifstream(options.csv_path).good();
    std::ofstream out(options.csv_path, std::ios::app);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", options.csv_path.c_str());
      return 1;
    }
    if (fresh) out << tel::RunReport::csv_header() << "\n";
    out << report.value().run.to_csv_row() << "\n";
    std::printf("csv row appended to %s\n", options.csv_path.c_str());
  }
  return 0;
}

}  // namespace pe::core::cli
