#include "ml/federated.h"

#include "ml/autoencoder.h"
#include "ml/kmeans.h"

namespace pe::ml::fed {
namespace {

Result<std::vector<double>> normalize_weights(std::size_t n,
                                              std::vector<double> weights) {
  if (weights.empty()) weights.assign(n, 1.0);
  if (weights.size() != n) {
    return Status::InvalidArgument("weight count != model count");
  }
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative weight");
    total += w;
  }
  if (total <= 0.0) return Status::InvalidArgument("weights sum to zero");
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace

Result<Bytes> average_autoencoders(const std::vector<Bytes>& models,
                                   std::vector<double> weights) {
  if (models.empty()) return Status::InvalidArgument("no models");
  auto norm = normalize_weights(models.size(), std::move(weights));
  if (!norm.ok()) return norm.status();

  std::vector<AutoEncoder> parties(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (auto s = parties[i].load(models[i]); !s.ok()) return s;
    if (parties[i].layer_dims() != parties[0].layer_dims()) {
      return Status::InvalidArgument(
          "architecture mismatch between parties");
    }
  }

  // Weighted average of every weight matrix and bias vector.
  std::vector<Matrix> avg_weights = parties[0].layer_weights();
  std::vector<std::vector<double>> avg_biases = parties[0].layer_biases();
  for (auto& w : avg_weights) {
    for (auto& v : w.storage()) v *= norm.value()[0];
  }
  for (auto& b : avg_biases) {
    for (auto& v : b) v *= norm.value()[0];
  }
  for (std::size_t p = 1; p < parties.size(); ++p) {
    const double wp = norm.value()[p];
    const auto& pw = parties[p].layer_weights();
    const auto& pb = parties[p].layer_biases();
    for (std::size_t l = 0; l < avg_weights.size(); ++l) {
      auto& acc = avg_weights[l].storage();
      const auto& src = pw[l].storage();
      for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += wp * src[i];
      for (std::size_t i = 0; i < avg_biases[l].size(); ++i) {
        avg_biases[l][i] += wp * pb[l][i];
      }
    }
  }

  // Pool the scalers so the global model standardizes over all parties'
  // data distributions.
  StandardScaler pooled = parties[0].input_scaler();
  for (std::size_t p = 1; p < parties.size(); ++p) {
    if (auto s = pooled.merge(parties[p].input_scaler()); !s.ok()) return s;
  }

  AutoEncoder result;
  if (auto s = result.load(models[0]); !s.ok()) return s;
  if (auto s = result.set_parameters(std::move(avg_weights),
                                     std::move(avg_biases),
                                     std::move(pooled));
      !s.ok()) {
    return s;
  }
  return result.save();
}

Result<Bytes> average_kmeans(const std::vector<Bytes>& models,
                             std::vector<double> weights) {
  if (models.empty()) return Status::InvalidArgument("no models");
  auto norm = normalize_weights(models.size(), std::move(weights));
  if (!norm.ok()) return norm.status();

  std::vector<KMeans> parties(models.size());
  for (std::size_t i = 0; i < models.size(); ++i) {
    if (auto s = parties[i].load(models[i]); !s.ok()) return s;
    if (parties[i].centers().size() != parties[0].centers().size() ||
        parties[i].features() != parties[0].features()) {
      return Status::InvalidArgument("cluster shape mismatch");
    }
  }

  const std::size_t features = parties[0].features();
  const std::size_t clusters = parties[0].center_counts().size();
  std::vector<double> centers(clusters * features, 0.0);
  std::vector<std::uint64_t> counts(clusters, 0);
  for (std::size_t p = 0; p < parties.size(); ++p) {
    const double wp = norm.value()[p];
    const auto& pc = parties[p].centers();
    for (std::size_t i = 0; i < centers.size(); ++i) {
      centers[i] += wp * pc[i];
    }
    for (std::size_t c = 0; c < clusters; ++c) {
      counts[c] += parties[p].center_counts()[c];
    }
  }

  KMeans result;
  if (auto s = result.set_centers(std::move(centers), std::move(counts),
                                  features);
      !s.ok()) {
    return s;
  }
  return result.save();
}

}  // namespace pe::ml::fed
