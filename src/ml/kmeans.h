// K-means outlier detector (paper model 1; 25 clusters).
//
// fit() runs Lloyd's algorithm with k-means++ initialization; partial_fit()
// performs mini-batch k-means updates (Sculley 2010) so the model keeps
// learning from the stream, exactly the "model is updated based on the
// incoming data" behaviour in §III-2. The anomaly score of a point is its
// Euclidean distance to the nearest centroid.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "ml/model.h"

namespace pe::ml {

struct KMeansConfig {
  std::size_t clusters = 25;  // paper: "k-means (25 clusters as previously)"
  std::size_t max_iterations = 20;
  double tolerance = 1e-4;  // stop when centroid movement falls below
  /// Cap on per-center sample weight during mini-batch updates. The
  /// classic 1/count learning rate decays to zero, freezing the model on
  /// non-stationary streams; a cap keeps the effective rate >= 1/cap so
  /// centroids can track concept drift (0 = uncapped, classic behaviour).
  std::uint64_t max_center_weight = 0;
  std::uint64_t seed = 13;
};

class KMeans final : public OutlierModel {
 public:
  explicit KMeans(KMeansConfig config = {});

  ModelKind kind() const override { return ModelKind::kKMeans; }
  bool fitted() const override { return !centers_.empty(); }

  Status fit(const data::DataBlock& block) override;
  Status partial_fit(const data::DataBlock& block) override;
  Result<std::vector<double>> score(
      const data::DataBlock& block) const override;

  Bytes save() const override;
  Status load(const Bytes& bytes) override;
  std::size_t parameter_count() const override { return centers_.size(); }

  /// Hard cluster assignment per row.
  Result<std::vector<std::uint32_t>> predict(
      const data::DataBlock& block) const;

  /// Sum of squared distances of the block to nearest centroids.
  Result<double> inertia(const data::DataBlock& block) const;

  const KMeansConfig& config() const { return config_; }
  std::size_t features() const { return features_; }
  /// Row-major clusters x features centroid matrix.
  const std::vector<double>& centers() const { return centers_; }
  /// Per-center observation counts (mini-batch state / FedAvg weights).
  const std::vector<std::uint64_t>& center_counts() const { return counts_; }
  /// Replaces the learned centroids (federated averaging); sizes must be
  /// consistent (centers.size() == counts.size() * features).
  Status set_centers(std::vector<double> centers,
                     std::vector<std::uint64_t> counts,
                     std::size_t features);

 private:
  void init_centers(const data::DataBlock& block);
  /// Index of nearest center and its squared distance.
  std::pair<std::size_t, double> nearest(const double* row) const;

  KMeansConfig config_;
  Rng rng_;
  std::size_t features_ = 0;
  std::vector<double> centers_;        // clusters x features
  std::vector<std::uint64_t> counts_;  // per-center sample counts (minibatch)
};

}  // namespace pe::ml
