#include "ml/autoencoder.h"

#include <algorithm>
#include <cmath>

namespace pe::ml {
namespace {

Matrix block_to_matrix(const data::DataBlock& block) {
  return Matrix(block.rows, block.cols, block.values);
}

}  // namespace

AutoEncoder::AutoEncoder(AutoEncoderConfig config)
    : config_(std::move(config)), rng_(config_.seed) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.epochs_per_fit == 0) config_.epochs_per_fit = 1;
}

void AutoEncoder::initialize(std::size_t features) {
  features_ = features;
  dims_.clear();
  dims_.push_back(features);
  if (config_.extra_input_layer) dims_.push_back(features);
  for (std::size_t h : config_.hidden_layers) dims_.push_back(h);
  dims_.push_back(features);

  const std::size_t layers = dims_.size() - 1;
  weights_.clear();
  biases_.clear();
  m_w_.clear();
  v_w_.clear();
  m_b_.clear();
  v_b_.clear();
  for (std::size_t l = 0; l < layers; ++l) {
    const std::size_t in = dims_[l], out = dims_[l + 1];
    Matrix w(in, out);
    // He initialization (ReLU hidden layers).
    const double scale = std::sqrt(2.0 / static_cast<double>(in));
    for (auto& v : w.storage()) v = rng_.gaussian(0.0, scale);
    weights_.push_back(std::move(w));
    biases_.emplace_back(out, 0.0);
    m_w_.emplace_back(in, out);
    v_w_.emplace_back(in, out);
    m_b_.emplace_back(out, 0.0);
    v_b_.emplace_back(out, 0.0);
  }
  adam_step_ = 0;
  initialized_ = true;
}

void AutoEncoder::forward(const Matrix& x,
                          std::vector<Matrix>& activations) const {
  const std::size_t layers = weights_.size();
  activations.resize(layers + 1);
  activations[0] = x;
  for (std::size_t l = 0; l < layers; ++l) {
    Matrix& out = activations[l + 1];
    matmul(activations[l], weights_[l], out);
    const auto& bias = biases_[l];
    const bool is_last = l + 1 == layers;
    for (std::size_t r = 0; r < out.rows(); ++r) {
      double* row = out.data() + r * out.cols();
      for (std::size_t c = 0; c < out.cols(); ++c) {
        row[c] += bias[c];
        if (!is_last && row[c] < 0.0) row[c] = 0.0;  // ReLU
      }
    }
  }
}

double AutoEncoder::train_epoch(const Matrix& x) {
  const std::size_t n = x.rows();
  const std::size_t layers = weights_.size();
  // Shuffled mini-batches.
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  std::shuffle(order.begin(), order.end(), rng_.engine());

  double epoch_loss = 0.0;
  std::size_t batches = 0;
  std::vector<Matrix> acts;
  std::vector<Matrix> grad_w(layers);
  std::vector<std::vector<double>> grad_b(layers);
  Matrix delta, delta_prev;

  for (std::size_t start = 0; start < n; start += config_.batch_size) {
    const std::size_t end = std::min(n, start + config_.batch_size);
    const std::size_t bs = end - start;
    Matrix batch(bs, features_);
    for (std::size_t i = 0; i < bs; ++i) {
      const auto src = x.row(order[start + i]);
      std::copy(src.begin(), src.end(), batch.row(i).begin());
    }

    forward(batch, acts);
    const Matrix& yhat = acts[layers];

    // MSE loss and output delta: dL/dZ_last = 2 (yhat - y) / (bs * d).
    delta = Matrix(bs, features_);
    double loss = 0.0;
    const double inv = 1.0 / static_cast<double>(bs * features_);
    for (std::size_t i = 0; i < bs * features_; ++i) {
      const double diff = yhat.data()[i] - batch.data()[i];
      loss += diff * diff;
      delta.storage()[i] = 2.0 * diff * inv;
    }
    epoch_loss += loss * inv;
    batches += 1;

    // Backward pass.
    for (std::size_t l = layers; l-- > 0;) {
      matmul_at(acts[l], delta, grad_w[l]);  // dL/dW = A_l^T delta
      grad_b[l].assign(dims_[l + 1], 0.0);
      for (std::size_t r = 0; r < delta.rows(); ++r) {
        const double* row = delta.data() + r * delta.cols();
        for (std::size_t c = 0; c < delta.cols(); ++c) grad_b[l][c] += row[c];
      }
      if (l > 0) {
        matmul_bt(delta, weights_[l], delta_prev);  // delta W^T
        // ReLU gate of the previous layer's activation.
        for (std::size_t i = 0; i < delta_prev.size(); ++i) {
          if (acts[l].storage()[i] <= 0.0) delta_prev.storage()[i] = 0.0;
        }
        std::swap(delta, delta_prev);
      }
    }

    // Adam update.
    adam_step_ += 1;
    const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
    const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(adam_step_));
    const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(adam_step_));
    const double lr = config_.learning_rate;
    for (std::size_t l = 0; l < layers; ++l) {
      auto& w = weights_[l].storage();
      auto& g = grad_w[l].storage();
      auto& m = m_w_[l].storage();
      auto& v = v_w_[l].storage();
      for (std::size_t i = 0; i < w.size(); ++i) {
        m[i] = beta1 * m[i] + (1.0 - beta1) * g[i];
        v[i] = beta2 * v[i] + (1.0 - beta2) * g[i] * g[i];
        w[i] -= lr * (m[i] / bc1) / (std::sqrt(v[i] / bc2) + eps);
      }
      auto& b = biases_[l];
      auto& gb = grad_b[l];
      auto& mb = m_b_[l];
      auto& vb = v_b_[l];
      for (std::size_t i = 0; i < b.size(); ++i) {
        mb[i] = beta1 * mb[i] + (1.0 - beta1) * gb[i];
        vb[i] = beta2 * vb[i] + (1.0 - beta2) * gb[i] * gb[i];
        b[i] -= lr * (mb[i] / bc1) / (std::sqrt(vb[i] / bc2) + eps);
      }
    }
  }
  return batches > 0 ? epoch_loss / static_cast<double>(batches) : 0.0;
}

Status AutoEncoder::fit(const data::DataBlock& block) {
  if (!block.valid() || block.rows == 0) {
    return Status::InvalidArgument("invalid or empty block");
  }
  scaler_ = StandardScaler(block.cols);
  initialize(block.cols);
  return partial_fit(block);
}

Status AutoEncoder::partial_fit(const data::DataBlock& block) {
  if (!block.valid() || block.rows == 0) {
    return Status::InvalidArgument("invalid or empty block");
  }
  if (!initialized_) {
    scaler_ = StandardScaler(block.cols);
    initialize(block.cols);
  }
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  if (auto s = scaler_.partial_fit(block); !s.ok()) return s;

  data::DataBlock scaled = block;
  if (config_.max_training_rows > 0 &&
      block.rows > config_.max_training_rows) {
    // Train on a uniform sample of the block (PyOD-style bounded epoch
    // cost); scoring still covers every row.
    const auto sample = rng_.sample_without_replacement(
        block.rows, config_.max_training_rows);
    scaled.rows = sample.size();
    scaled.values.resize(sample.size() * block.cols);
    scaled.labels.clear();
    for (std::size_t i = 0; i < sample.size(); ++i) {
      const auto src = block.row(sample[i]);
      std::copy(src.begin(), src.end(),
                scaled.values.begin() +
                    static_cast<std::ptrdiff_t>(i * block.cols));
    }
  }
  if (auto s = scaler_.transform(scaled); !s.ok()) return s;
  const Matrix x = block_to_matrix(scaled);
  for (std::size_t e = 0; e < config_.epochs_per_fit; ++e) {
    last_loss_ = train_epoch(x);
  }
  return Status::Ok();
}

Result<std::vector<double>> AutoEncoder::score(
    const data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (!block.valid()) return Status::InvalidArgument("invalid block");
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  data::DataBlock scaled = block;
  if (auto s = scaler_.transform(scaled); !s.ok()) return s;
  const Matrix x = block_to_matrix(scaled);
  std::vector<Matrix> acts;
  forward(x, acts);
  const Matrix& yhat = acts.back();
  std::vector<double> scores(block.rows);
  for (std::size_t r = 0; r < block.rows; ++r) {
    double err = 0.0;
    const double* a = x.data() + r * features_;
    const double* b = yhat.data() + r * features_;
    for (std::size_t f = 0; f < features_; ++f) {
      const double d = a[f] - b[f];
      err += d * d;
    }
    scores[r] = std::sqrt(err / static_cast<double>(features_));
  }
  return scores;
}

Status AutoEncoder::set_parameters(std::vector<Matrix> weights,
                                   std::vector<std::vector<double>> biases,
                                   StandardScaler scaler) {
  if (!initialized_) {
    return Status::FailedPrecondition("initialize via fit/load first");
  }
  if (weights.size() != weights_.size() || biases.size() != biases_.size()) {
    return Status::InvalidArgument("layer count mismatch");
  }
  for (std::size_t l = 0; l < weights.size(); ++l) {
    if (weights[l].rows() != weights_[l].rows() ||
        weights[l].cols() != weights_[l].cols() ||
        biases[l].size() != biases_[l].size()) {
      return Status::InvalidArgument("layer shape mismatch at layer " +
                                     std::to_string(l));
    }
  }
  if (scaler.features() != features_) {
    return Status::InvalidArgument("scaler feature mismatch");
  }
  weights_ = std::move(weights);
  biases_ = std::move(biases);
  scaler_ = std::move(scaler);
  return Status::Ok();
}

std::size_t AutoEncoder::parameter_count() const {
  std::size_t total = 0;
  for (const auto& w : weights_) total += w.size();
  for (const auto& b : biases_) total += b.size();
  return total;
}

Bytes AutoEncoder::save() const {
  Bytes out;
  ByteWriter w(out);
  w.put_u64(features_);
  w.put_u64(dims_.size());
  for (std::size_t d : dims_) w.put_u64(d);
  for (const auto& weight : weights_) {
    w.put_f64_array(weight.data(), weight.size());
  }
  for (const auto& bias : biases_) {
    w.put_f64_array(bias.data(), bias.size());
  }
  scaler_.save(w);
  return out;
}

Status AutoEncoder::load(const Bytes& bytes) {
  ByteReader r(bytes);
  std::uint64_t features = 0, ndims = 0;
  if (auto s = r.get_u64(features); !s.ok()) return s;
  if (auto s = r.get_u64(ndims); !s.ok()) return s;
  if (ndims < 2 || ndims > 64 || features > (1u << 20)) {
    return Status::InvalidArgument("implausible autoencoder shape");
  }
  std::vector<std::size_t> dims(ndims);
  for (std::size_t i = 0; i < ndims; ++i) {
    std::uint64_t v = 0;
    if (auto s = r.get_u64(v); !s.ok()) return s;
    if (v == 0 || v > (1u << 20)) {
      return Status::InvalidArgument("implausible layer width");
    }
    dims[i] = v;
  }
  std::vector<Matrix> weights;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    Matrix w(dims[l], dims[l + 1]);
    if (auto s = r.get_f64_array(w.data(), w.size()); !s.ok()) return s;
    weights.push_back(std::move(w));
  }
  std::vector<std::vector<double>> biases;
  for (std::size_t l = 0; l + 1 < dims.size(); ++l) {
    std::vector<double> b(dims[l + 1]);
    if (auto s = r.get_f64_array(b.data(), b.size()); !s.ok()) return s;
    biases.push_back(std::move(b));
  }
  StandardScaler scaler;
  if (auto s = scaler.load(r); !s.ok()) return s;

  features_ = features;
  dims_ = std::move(dims);
  weights_ = std::move(weights);
  biases_ = std::move(biases);
  scaler_ = std::move(scaler);
  // Reset optimizer state: a loaded model resumes training fresh.
  m_w_.clear();
  v_w_.clear();
  m_b_.clear();
  v_b_.clear();
  for (std::size_t l = 0; l + 1 < dims_.size(); ++l) {
    m_w_.emplace_back(dims_[l], dims_[l + 1]);
    v_w_.emplace_back(dims_[l], dims_[l + 1]);
    m_b_.emplace_back(dims_[l + 1], 0.0);
    v_b_.emplace_back(dims_[l + 1], 0.0);
  }
  adam_step_ = 0;
  initialized_ = true;
  return Status::Ok();
}

}  // namespace pe::ml
