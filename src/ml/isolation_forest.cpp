#include "ml/isolation_forest.h"

#include <algorithm>
#include <cmath>

namespace pe::ml {
namespace {
constexpr double kEulerMascheroni = 0.5772156649015329;
}

IsolationForest::IsolationForest(IsolationForestConfig config)
    : config_(config), rng_(config.seed) {
  if (config_.trees == 0) config_.trees = 1;
  if (config_.subsample < 2) config_.subsample = 2;
}

double IsolationForest::average_path_length(std::size_t n) {
  if (n <= 1) return 0.0;
  if (n == 2) return 1.0;
  const auto nd = static_cast<double>(n);
  // c(n) = 2 H(n-1) - 2 (n-1)/n, H(i) ~ ln(i) + gamma.
  return 2.0 * (std::log(nd - 1.0) + kEulerMascheroni) -
         2.0 * (nd - 1.0) / nd;
}

std::int32_t IsolationForest::build_node(Tree& tree,
                                         const data::DataBlock& block,
                                         std::vector<std::size_t>& rows,
                                         std::size_t begin, std::size_t end,
                                         std::size_t depth,
                                         std::size_t max_depth) {
  const std::size_t count = end - begin;
  const auto index = static_cast<std::int32_t>(tree.nodes.size());
  tree.nodes.emplace_back();

  if (count <= 1 || depth >= max_depth) {
    tree.nodes[static_cast<std::size_t>(index)].size =
        static_cast<std::uint32_t>(count);
    return index;
  }

  // Random feature with spread; random threshold within its range.
  std::uint32_t feature = 0;
  double lo = 0.0, hi = 0.0;
  bool found = false;
  for (std::size_t attempt = 0; attempt < features_; ++attempt) {
    feature = static_cast<std::uint32_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(features_) - 1));
    lo = hi = block.values[rows[begin] * features_ + feature];
    for (std::size_t i = begin + 1; i < end; ++i) {
      const double v = block.values[rows[i] * features_ + feature];
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
    if (hi > lo) {
      found = true;
      break;
    }
  }
  if (!found) {
    // All candidate features constant: external node.
    tree.nodes[static_cast<std::size_t>(index)].size =
        static_cast<std::uint32_t>(count);
    return index;
  }

  const double threshold = rng_.uniform(lo, hi);
  auto mid_it = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t r) {
        return block.values[r * features_ + feature] < threshold;
      });
  const auto mid =
      static_cast<std::size_t>(mid_it - rows.begin());
  // Degenerate partition cannot occur (threshold strictly inside (lo,hi)),
  // but guard anyway to avoid infinite recursion on pathological floats.
  if (mid == begin || mid == end) {
    tree.nodes[static_cast<std::size_t>(index)].size =
        static_cast<std::uint32_t>(count);
    return index;
  }

  tree.nodes[static_cast<std::size_t>(index)].feature = feature;
  tree.nodes[static_cast<std::size_t>(index)].threshold = threshold;
  const std::int32_t left =
      build_node(tree, block, rows, begin, mid, depth + 1, max_depth);
  const std::int32_t right =
      build_node(tree, block, rows, mid, end, depth + 1, max_depth);
  tree.nodes[static_cast<std::size_t>(index)].left = left;
  tree.nodes[static_cast<std::size_t>(index)].right = right;
  return index;
}

IsolationForest::Tree IsolationForest::build_tree(
    const data::DataBlock& block, const std::vector<std::size_t>& sample) {
  Tree tree;
  tree.nodes.reserve(2 * sample.size());
  std::vector<std::size_t> rows = sample;
  const auto max_depth = static_cast<std::size_t>(
      std::ceil(std::log2(std::max<std::size_t>(2, rows.size()))));
  build_node(tree, block, rows, 0, rows.size(), 0, max_depth);
  return tree;
}

Status IsolationForest::fit(const data::DataBlock& block) {
  if (!block.valid() || block.rows == 0) {
    return Status::InvalidArgument("invalid or empty block");
  }
  features_ = block.cols;
  forest_.clear();
  for (std::size_t t = 0; t < config_.trees; ++t) {
    const auto sample = rng_.sample_without_replacement(
        block.rows, std::min(config_.subsample, block.rows));
    forest_.push_back(build_tree(block, sample));
  }
  return Status::Ok();
}

Status IsolationForest::partial_fit(const data::DataBlock& block) {
  if (!block.valid() || block.rows == 0) {
    return Status::InvalidArgument("invalid or empty block");
  }
  if (!fitted()) return fit(block);
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const auto refresh = std::max<std::size_t>(
      1, static_cast<std::size_t>(static_cast<double>(config_.trees) *
                                  config_.refresh_fraction));
  for (std::size_t t = 0; t < refresh; ++t) {
    if (!forest_.empty()) forest_.pop_front();
    const auto sample = rng_.sample_without_replacement(
        block.rows, std::min(config_.subsample, block.rows));
    forest_.push_back(build_tree(block, sample));
  }
  return Status::Ok();
}

double IsolationForest::path_length(const Tree& tree,
                                    const double* row) const {
  std::size_t depth = 0;
  std::int32_t node = 0;
  while (true) {
    const Node& n = tree.nodes[static_cast<std::size_t>(node)];
    if (n.left < 0) {
      return static_cast<double>(depth) + average_path_length(n.size);
    }
    node = row[n.feature] < n.threshold ? n.left : n.right;
    depth += 1;
  }
}

Result<std::vector<double>> IsolationForest::score(
    const data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (!block.valid()) return Status::InvalidArgument("invalid block");
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const double c = average_path_length(config_.subsample);
  std::vector<double> scores(block.rows);
  for (std::size_t r = 0; r < block.rows; ++r) {
    const double* row = block.values.data() + r * features_;
    double mean_path = 0.0;
    for (const Tree& tree : forest_) mean_path += path_length(tree, row);
    mean_path /= static_cast<double>(forest_.size());
    scores[r] = std::pow(2.0, -mean_path / c);
  }
  return scores;
}

std::size_t IsolationForest::parameter_count() const {
  std::size_t nodes = 0;
  for (const Tree& t : forest_) nodes += t.nodes.size();
  return nodes * 2;  // feature + threshold per node
}

Bytes IsolationForest::save() const {
  Bytes out;
  ByteWriter w(out);
  w.put_u64(features_);
  w.put_u64(forest_.size());
  for (const Tree& tree : forest_) {
    w.put_u64(tree.nodes.size());
    for (const Node& n : tree.nodes) {
      w.put_u32(static_cast<std::uint32_t>(n.left));
      w.put_u32(static_cast<std::uint32_t>(n.right));
      w.put_u32(n.feature);
      w.put_f64(n.threshold);
      w.put_u32(n.size);
    }
  }
  return out;
}

Status IsolationForest::load(const Bytes& bytes) {
  ByteReader r(bytes);
  std::uint64_t features = 0, trees = 0;
  if (auto s = r.get_u64(features); !s.ok()) return s;
  if (auto s = r.get_u64(trees); !s.ok()) return s;
  if (features > (1u << 20) || trees > (1u << 20)) {
    return Status::InvalidArgument("implausible forest dimensions");
  }
  std::deque<Tree> forest;
  for (std::uint64_t t = 0; t < trees; ++t) {
    std::uint64_t node_count = 0;
    if (auto s = r.get_u64(node_count); !s.ok()) return s;
    if (node_count > (1u << 26)) {
      return Status::InvalidArgument("implausible tree size");
    }
    Tree tree;
    tree.nodes.resize(node_count);
    for (Node& n : tree.nodes) {
      std::uint32_t left = 0, right = 0;
      if (auto s = r.get_u32(left); !s.ok()) return s;
      if (auto s = r.get_u32(right); !s.ok()) return s;
      if (auto s = r.get_u32(n.feature); !s.ok()) return s;
      if (auto s = r.get_f64(n.threshold); !s.ok()) return s;
      if (auto s = r.get_u32(n.size); !s.ok()) return s;
      n.left = static_cast<std::int32_t>(left);
      n.right = static_cast<std::int32_t>(right);
    }
    forest.push_back(std::move(tree));
  }
  features_ = features;
  forest_ = std::move(forest);
  return Status::Ok();
}

}  // namespace pe::ml
