// OutlierModel: the interface shared by all three paper models.
//
// Models are streaming: partial_fit() updates the model with the incoming
// block (the paper updates each model as data arrives, with parameters
// shared via the parameter service), score() returns one anomaly score per
// row (higher = more anomalous), and save/load serialize the parameters so
// they can be shipped through the ParameterServer.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "data/block.h"

namespace pe::ml {

enum class ModelKind {
  kBaseline,  // no ML: pass-through (paper's "baseline" rows)
  kKMeans,
  kIsolationForest,
  kAutoEncoder,
};

constexpr const char* to_string(ModelKind k) {
  switch (k) {
    case ModelKind::kBaseline: return "baseline";
    case ModelKind::kKMeans: return "kmeans";
    case ModelKind::kIsolationForest: return "isolation-forest";
    case ModelKind::kAutoEncoder: return "auto-encoder";
  }
  return "?";
}

class OutlierModel {
 public:
  virtual ~OutlierModel() = default;

  virtual ModelKind kind() const = 0;
  virtual std::string name() const { return to_string(kind()); }

  /// True once the model can score (some models need a first fit).
  virtual bool fitted() const = 0;

  /// Full (re)fit on a block.
  virtual Status fit(const data::DataBlock& block) = 0;

  /// Incremental update with a new block (streaming training).
  virtual Status partial_fit(const data::DataBlock& block) = 0;

  /// Per-row anomaly scores, higher = more anomalous. Models must be
  /// fitted() first (FAILED_PRECONDITION otherwise).
  virtual Result<std::vector<double>> score(
      const data::DataBlock& block) const = 0;

  /// Serializes parameters for the parameter server.
  virtual Bytes save() const = 0;
  virtual Status load(const Bytes& bytes) = 0;

  /// Number of learned parameters (reported in experiment logs; the paper
  /// quotes 11,552 for its auto-encoder).
  virtual std::size_t parameter_count() const = 0;
};

using ModelPtr = std::unique_ptr<OutlierModel>;

}  // namespace pe::ml
