// Baseline "model": no machine learning at all.
//
// Used for the paper's baseline rows (Fig. 2 and the baseline series of
// Fig. 3), where the processing stage only receives and acknowledges data.
// score() returns zeros so the rest of the pipeline is shape-compatible.
#pragma once

#include "ml/model.h"

namespace pe::ml {

class Baseline final : public OutlierModel {
 public:
  ModelKind kind() const override { return ModelKind::kBaseline; }
  bool fitted() const override { return true; }

  Status fit(const data::DataBlock& block) override {
    return block.valid() ? Status::Ok()
                         : Status::InvalidArgument("invalid block");
  }
  Status partial_fit(const data::DataBlock& block) override {
    return fit(block);
  }
  Result<std::vector<double>> score(
      const data::DataBlock& block) const override {
    if (!block.valid()) return Status::InvalidArgument("invalid block");
    return std::vector<double>(block.rows, 0.0);
  }
  Bytes save() const override { return {}; }
  Status load(const Bytes&) override { return Status::Ok(); }
  std::size_t parameter_count() const override { return 0; }
};

}  // namespace pe::ml
