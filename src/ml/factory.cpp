#include "ml/factory.h"

#include "ml/autoencoder.h"
#include "ml/baseline.h"
#include "ml/isolation_forest.h"
#include "ml/kmeans.h"

namespace pe::ml {

ModelPtr make_model(ModelKind kind, const ConfigMap& config) {
  const auto seed =
      static_cast<std::uint64_t>(config.get_int_or("seed", 17));
  switch (kind) {
    case ModelKind::kBaseline:
      return std::make_unique<Baseline>();
    case ModelKind::kKMeans: {
      KMeansConfig c;
      c.clusters = static_cast<std::size_t>(
          config.get_int_or("kmeans.clusters", 25));
      c.max_iterations = static_cast<std::size_t>(
          config.get_int_or("kmeans.max_iterations", 20));
      c.max_center_weight = static_cast<std::uint64_t>(
          config.get_int_or("kmeans.max_center_weight", 0));
      c.seed = seed;
      return std::make_unique<KMeans>(c);
    }
    case ModelKind::kIsolationForest: {
      IsolationForestConfig c;
      c.trees =
          static_cast<std::size_t>(config.get_int_or("iforest.trees", 100));
      c.subsample = static_cast<std::size_t>(
          config.get_int_or("iforest.subsample", 256));
      c.refresh_fraction =
          config.get_double_or("iforest.refresh_fraction", 0.1);
      c.seed = seed;
      return std::make_unique<IsolationForest>(c);
    }
    case ModelKind::kAutoEncoder: {
      AutoEncoderConfig c;
      c.epochs_per_fit =
          static_cast<std::size_t>(config.get_int_or("ae.epochs", 20));
      c.batch_size =
          static_cast<std::size_t>(config.get_int_or("ae.batch_size", 32));
      c.max_training_rows = static_cast<std::size_t>(
          config.get_int_or("ae.max_training_rows", 1024));
      c.learning_rate = config.get_double_or("ae.learning_rate", 1e-3);
      c.seed = seed;
      return std::make_unique<AutoEncoder>(c);
    }
  }
  return nullptr;
}

Result<ModelKind> parse_model_kind(const std::string& name) {
  if (name == "baseline") return ModelKind::kBaseline;
  if (name == "kmeans" || name == "k-means") return ModelKind::kKMeans;
  if (name == "isolation-forest" || name == "iforest") {
    return ModelKind::kIsolationForest;
  }
  if (name == "auto-encoder" || name == "autoencoder" || name == "ae") {
    return ModelKind::kAutoEncoder;
  }
  return Status::InvalidArgument("unknown model kind '" + name + "'");
}

}  // namespace pe::ml
