// StandardScaler: per-feature standardization with streaming updates.
//
// Keeps running count/mean/M2 (Welford) so it can be updated block by
// block — used in front of the auto-encoder, matching PyOD's
// preprocessing.
#pragma once

#include <cstddef>
#include <vector>

#include "common/serialize.h"
#include "common/status.h"
#include "data/block.h"

namespace pe::ml {

class StandardScaler {
 public:
  explicit StandardScaler(std::size_t features = 0);

  std::size_t features() const { return mean_.size(); }
  std::size_t samples_seen() const { return count_; }
  bool fitted() const { return count_ > 0; }

  /// Streaming update with all rows of a block.
  Status partial_fit(const data::DataBlock& block);

  /// Standardizes in place: x <- (x - mean) / std (std floor 1e-9).
  Status transform(data::DataBlock& block) const;

  /// Inverse operation (used by tests to round-trip).
  Status inverse_transform(data::DataBlock& block) const;

  std::vector<double> mean() const { return mean_; }
  std::vector<double> stddev() const;

  /// Pooled merge of another scaler's statistics (parallel Welford),
  /// as if this scaler had also seen the other's samples.
  Status merge(const StandardScaler& other);

  void save(ByteWriter& w) const;
  Status load(ByteReader& r);

 private:
  std::size_t count_ = 0;
  std::vector<double> mean_;
  std::vector<double> m2_;  // sum of squared deviations (Welford)
};

}  // namespace pe::ml
