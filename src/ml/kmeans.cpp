#include "ml/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace pe::ml {
namespace {

double sq_dist(const double* a, const double* b, std::size_t n) {
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace

KMeans::KMeans(KMeansConfig config) : config_(config), rng_(config.seed) {
  if (config_.clusters == 0) config_.clusters = 1;
}

std::pair<std::size_t, double> KMeans::nearest(const double* row) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::max();
  const std::size_t k = centers_.size() / features_;
  for (std::size_t c = 0; c < k; ++c) {
    const double d = sq_dist(row, centers_.data() + c * features_, features_);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  return {best, best_d};
}

void KMeans::init_centers(const data::DataBlock& block) {
  features_ = block.cols;
  const std::size_t k = std::min(config_.clusters, block.rows);
  centers_.assign(config_.clusters * features_, 0.0);
  counts_.assign(config_.clusters, 0);

  // k-means++ seeding: first center uniform, then proportional to D^2.
  std::vector<double> min_d2(block.rows,
                             std::numeric_limits<double>::max());
  const auto first = static_cast<std::size_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(block.rows) - 1));
  std::copy_n(block.values.data() + first * features_, features_,
              centers_.begin());

  for (std::size_t c = 1; c < k; ++c) {
    const double* last_center = centers_.data() + (c - 1) * features_;
    double total = 0.0;
    for (std::size_t r = 0; r < block.rows; ++r) {
      const double d =
          sq_dist(block.values.data() + r * features_, last_center, features_);
      min_d2[r] = std::min(min_d2[r], d);
      total += min_d2[r];
    }
    double target = rng_.uniform(0.0, total);
    std::size_t chosen = block.rows - 1;
    for (std::size_t r = 0; r < block.rows; ++r) {
      target -= min_d2[r];
      if (target <= 0.0) {
        chosen = r;
        break;
      }
    }
    std::copy_n(block.values.data() + chosen * features_, features_,
                centers_.begin() + static_cast<std::ptrdiff_t>(c * features_));
  }
  // If the block had fewer rows than clusters, duplicate-seed the rest from
  // random rows so every center is valid.
  for (std::size_t c = k; c < config_.clusters; ++c) {
    const auto r = static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(block.rows) - 1));
    std::copy_n(block.values.data() + r * features_, features_,
                centers_.begin() + static_cast<std::ptrdiff_t>(c * features_));
  }
}

Status KMeans::fit(const data::DataBlock& block) {
  if (!block.valid() || block.rows == 0) {
    return Status::InvalidArgument("invalid or empty block");
  }
  init_centers(block);
  const std::size_t k = config_.clusters;

  std::vector<std::size_t> assign(block.rows, 0);
  std::vector<double> new_centers(k * features_);
  std::vector<std::uint64_t> new_counts(k);

  for (std::size_t iter = 0; iter < config_.max_iterations; ++iter) {
    std::fill(new_centers.begin(), new_centers.end(), 0.0);
    std::fill(new_counts.begin(), new_counts.end(), 0);

    for (std::size_t r = 0; r < block.rows; ++r) {
      const double* row = block.values.data() + r * features_;
      assign[r] = nearest(row).first;
      double* acc = new_centers.data() + assign[r] * features_;
      for (std::size_t f = 0; f < features_; ++f) acc[f] += row[f];
      new_counts[assign[r]] += 1;
    }

    double movement = 0.0;
    for (std::size_t c = 0; c < k; ++c) {
      if (new_counts[c] == 0) continue;  // keep empty centers in place
      double* target = new_centers.data() + c * features_;
      const double inv = 1.0 / static_cast<double>(new_counts[c]);
      double* current = centers_.data() + c * features_;
      for (std::size_t f = 0; f < features_; ++f) {
        target[f] *= inv;
        const double d = target[f] - current[f];
        movement += d * d;
        current[f] = target[f];
      }
    }
    if (std::sqrt(movement) < config_.tolerance) break;
  }
  counts_.assign(k, 0);
  for (std::size_t r = 0; r < block.rows; ++r) counts_[assign[r]] += 1;
  return Status::Ok();
}

Status KMeans::partial_fit(const data::DataBlock& block) {
  if (!block.valid() || block.rows == 0) {
    return Status::InvalidArgument("invalid or empty block");
  }
  if (!fitted()) {
    // First block bootstraps the model with a full fit.
    return fit(block);
  }
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  // Mini-batch update (Sculley): per-sample convex step toward the sample
  // with learning rate 1/count(center). An optional weight cap keeps the
  // rate bounded away from zero for drift tracking.
  for (std::size_t r = 0; r < block.rows; ++r) {
    const double* row = block.values.data() + r * features_;
    const std::size_t c = nearest(row).first;
    counts_[c] += 1;
    if (config_.max_center_weight > 0 &&
        counts_[c] > config_.max_center_weight) {
      counts_[c] = config_.max_center_weight;
    }
    const double eta = 1.0 / static_cast<double>(counts_[c]);
    double* center = centers_.data() + c * features_;
    for (std::size_t f = 0; f < features_; ++f) {
      center[f] += eta * (row[f] - center[f]);
    }
  }
  return Status::Ok();
}

Result<std::vector<double>> KMeans::score(
    const data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (!block.valid()) return Status::InvalidArgument("invalid block");
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<double> scores(block.rows);
  for (std::size_t r = 0; r < block.rows; ++r) {
    scores[r] =
        std::sqrt(nearest(block.values.data() + r * features_).second);
  }
  return scores;
}

Result<std::vector<std::uint32_t>> KMeans::predict(
    const data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  std::vector<std::uint32_t> out(block.rows);
  for (std::size_t r = 0; r < block.rows; ++r) {
    out[r] = static_cast<std::uint32_t>(
        nearest(block.values.data() + r * features_).first);
  }
  return out;
}

Result<double> KMeans::inertia(const data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("model not fitted");
  if (block.cols != features_) {
    return Status::InvalidArgument("feature count mismatch");
  }
  double total = 0.0;
  for (std::size_t r = 0; r < block.rows; ++r) {
    total += nearest(block.values.data() + r * features_).second;
  }
  return total;
}

Status KMeans::set_centers(std::vector<double> centers,
                           std::vector<std::uint64_t> counts,
                           std::size_t features) {
  if (features == 0 || counts.empty() ||
      centers.size() != counts.size() * features) {
    return Status::InvalidArgument("inconsistent centroid shapes");
  }
  config_.clusters = counts.size();
  features_ = features;
  centers_ = std::move(centers);
  counts_ = std::move(counts);
  return Status::Ok();
}

Bytes KMeans::save() const {
  Bytes out;
  ByteWriter w(out);
  w.put_u64(config_.clusters);
  w.put_u64(features_);
  w.put_f64_array(centers_.data(), centers_.size());
  for (std::uint64_t c : counts_) w.put_u64(c);
  return out;
}

Status KMeans::load(const Bytes& bytes) {
  ByteReader r(bytes);
  std::uint64_t clusters = 0, features = 0;
  if (auto s = r.get_u64(clusters); !s.ok()) return s;
  if (auto s = r.get_u64(features); !s.ok()) return s;
  if (clusters == 0 || clusters > (1u << 20) || features > (1u << 20)) {
    return Status::InvalidArgument("implausible kmeans dimensions");
  }
  std::vector<double> centers(clusters * features);
  if (auto s = r.get_f64_array(centers.data(), centers.size()); !s.ok()) {
    return s;
  }
  std::vector<std::uint64_t> counts(clusters);
  for (auto& c : counts) {
    if (auto s = r.get_u64(c); !s.ok()) return s;
  }
  config_.clusters = clusters;
  features_ = features;
  centers_ = std::move(centers);
  counts_ = std::move(counts);
  return Status::Ok();
}

}  // namespace pe::ml
