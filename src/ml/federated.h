// Federated averaging across the continuum (paper §V future work:
// "we will explore novel edge-to-cloud scenarios, e.g., federated
// learning").
//
// Each edge site trains a local model on local data; the serialized
// models are shipped to the parameter service and combined by weighted
// averaging (FedAvg, McMahan et al. 2017):
//   - auto-encoders: element-wise weighted average of all weights and
//     biases (requires identical architectures), scalers pooled;
//   - k-means: per-index weighted centroid average (requires a common
//     initialization across parties, the standard one-shot federated
//     k-means setup).
//
// Weights are typically the parties' sample counts.
#pragma once

#include <vector>

#include "common/serialize.h"
#include "common/status.h"

namespace pe::ml::fed {

/// FedAvg over serialized AutoEncoder models (from OutlierModel::save()).
/// `weights` empty = uniform. Returns the averaged model's serialization.
Result<Bytes> average_autoencoders(const std::vector<Bytes>& models,
                                   std::vector<double> weights = {});

/// FedAvg over serialized KMeans models.
Result<Bytes> average_kmeans(const std::vector<Bytes>& models,
                             std::vector<double> weights = {});

}  // namespace pe::ml::fed
