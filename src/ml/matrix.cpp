#include "ml/matrix.h"

namespace pe::ml {

void matmul(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  if (out.rows() != a.rows() || out.cols() != b.cols()) {
    out = Matrix(a.rows(), b.cols());
  } else {
    out.fill(0.0);
  }
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  // ikj loop order: streams through b and out rows (cache friendly).
  for (std::size_t i = 0; i < n; ++i) {
    double* out_row = out.data() + i * m;
    const double* a_row = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const double av = a_row[p];
      if (av == 0.0) continue;
      const double* b_row = b.data() + p * m;
      for (std::size_t j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  }
}

void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  if (out.rows() != a.rows() || out.cols() != b.rows()) {
    out = Matrix(a.rows(), b.rows());
  }
  const std::size_t n = a.rows(), k = a.cols(), m = b.rows();
  for (std::size_t i = 0; i < n; ++i) {
    const double* a_row = a.data() + i * k;
    double* out_row = out.data() + i * m;
    for (std::size_t j = 0; j < m; ++j) {
      const double* b_row = b.data() + j * k;
      double sum = 0.0;
      for (std::size_t p = 0; p < k; ++p) sum += a_row[p] * b_row[p];
      out_row[j] = sum;
    }
  }
}

void matmul_at(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.rows() == b.rows());
  if (out.rows() != a.cols() || out.cols() != b.cols()) {
    out = Matrix(a.cols(), b.cols());
  } else {
    out.fill(0.0);
  }
  const std::size_t n = a.rows(), k = a.cols(), m = b.cols();
  for (std::size_t p = 0; p < n; ++p) {
    const double* a_row = a.data() + p * k;
    const double* b_row = b.data() + p * m;
    for (std::size_t i = 0; i < k; ++i) {
      const double av = a_row[i];
      if (av == 0.0) continue;
      double* out_row = out.data() + i * m;
      for (std::size_t j = 0; j < m; ++j) out_row[j] += av * b_row[j];
    }
  }
}

}  // namespace pe::ml
