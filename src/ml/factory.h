// Model factory keyed by ModelKind, with optional ConfigMap overrides.
#pragma once

#include "common/config.h"
#include "ml/model.h"

namespace pe::ml {

/// Creates a model with defaults tuned to the paper's setup. Recognized
/// ConfigMap keys (all optional):
///   kmeans.clusters, kmeans.max_iterations,
///   iforest.trees, iforest.subsample, iforest.refresh_fraction,
///   ae.epochs, ae.batch_size, ae.learning_rate,
///   seed (applies to every model kind)
ModelPtr make_model(ModelKind kind, const ConfigMap& config = {});

/// Parses "baseline" / "kmeans" / "isolation-forest" / "auto-encoder".
Result<ModelKind> parse_model_kind(const std::string& name);

}  // namespace pe::ml
