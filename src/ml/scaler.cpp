#include "ml/scaler.h"

#include <cmath>

namespace pe::ml {

StandardScaler::StandardScaler(std::size_t features)
    : mean_(features, 0.0), m2_(features, 0.0) {}

Status StandardScaler::partial_fit(const data::DataBlock& block) {
  if (!block.valid()) return Status::InvalidArgument("invalid block");
  if (mean_.empty()) {
    mean_.assign(block.cols, 0.0);
    m2_.assign(block.cols, 0.0);
  }
  if (block.cols != mean_.size()) {
    return Status::InvalidArgument("feature count mismatch: scaler has " +
                                   std::to_string(mean_.size()) + ", block " +
                                   std::to_string(block.cols));
  }
  for (std::size_t r = 0; r < block.rows; ++r) {
    count_ += 1;
    const auto row = block.row(r);
    const double inv_n = 1.0 / static_cast<double>(count_);
    for (std::size_t f = 0; f < block.cols; ++f) {
      const double delta = row[f] - mean_[f];
      mean_[f] += delta * inv_n;
      m2_[f] += delta * (row[f] - mean_[f]);
    }
  }
  return Status::Ok();
}

std::vector<double> StandardScaler::stddev() const {
  std::vector<double> out(mean_.size(), 0.0);
  if (count_ < 2) return out;
  for (std::size_t f = 0; f < out.size(); ++f) {
    out[f] = std::sqrt(m2_[f] / static_cast<double>(count_ - 1));
  }
  return out;
}

Status StandardScaler::transform(data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (block.cols != mean_.size()) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const std::vector<double> sd = stddev();
  for (std::size_t r = 0; r < block.rows; ++r) {
    auto row = block.row(r);
    for (std::size_t f = 0; f < block.cols; ++f) {
      const double s = sd[f] > 1e-9 ? sd[f] : 1.0;
      row[f] = (row[f] - mean_[f]) / s;
    }
  }
  return Status::Ok();
}

Status StandardScaler::inverse_transform(data::DataBlock& block) const {
  if (!fitted()) return Status::FailedPrecondition("scaler not fitted");
  if (block.cols != mean_.size()) {
    return Status::InvalidArgument("feature count mismatch");
  }
  const std::vector<double> sd = stddev();
  for (std::size_t r = 0; r < block.rows; ++r) {
    auto row = block.row(r);
    for (std::size_t f = 0; f < block.cols; ++f) {
      const double s = sd[f] > 1e-9 ? sd[f] : 1.0;
      row[f] = row[f] * s + mean_[f];
    }
  }
  return Status::Ok();
}

Status StandardScaler::merge(const StandardScaler& other) {
  if (other.count_ == 0) return Status::Ok();
  if (count_ == 0) {
    *this = other;
    return Status::Ok();
  }
  if (mean_.size() != other.mean_.size()) {
    return Status::InvalidArgument("feature count mismatch in merge");
  }
  const auto c1 = static_cast<double>(count_);
  const auto c2 = static_cast<double>(other.count_);
  const double total = c1 + c2;
  for (std::size_t f = 0; f < mean_.size(); ++f) {
    const double delta = other.mean_[f] - mean_[f];
    mean_[f] += delta * c2 / total;
    m2_[f] += other.m2_[f] + delta * delta * c1 * c2 / total;
  }
  count_ += other.count_;
  return Status::Ok();
}

void StandardScaler::save(ByteWriter& w) const {
  w.put_u64(count_);
  w.put_u64(mean_.size());
  w.put_f64_array(mean_.data(), mean_.size());
  w.put_f64_array(m2_.data(), m2_.size());
}

Status StandardScaler::load(ByteReader& r) {
  std::uint64_t count = 0, features = 0;
  if (auto s = r.get_u64(count); !s.ok()) return s;
  if (auto s = r.get_u64(features); !s.ok()) return s;
  if (features > (1u << 20)) {
    return Status::InvalidArgument("implausible feature count");
  }
  std::vector<double> mean(features), m2(features);
  if (auto s = r.get_f64_array(mean.data(), features); !s.ok()) return s;
  if (auto s = r.get_f64_array(m2.data(), features); !s.ok()) return s;
  count_ = count;
  mean_ = std::move(mean);
  m2_ = std::move(m2);
  return Status::Ok();
}

}  // namespace pe::ml
