// Minimal dense row-major matrix used by the ML kernels.
#pragma once

#include <cassert>
#include <cstddef>
#include <span>
#include <vector>

namespace pe::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    assert(data_.size() == rows_ * cols_);
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  std::span<double> row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  std::vector<double>& storage() { return data_; }
  const std::vector<double>& storage() const { return data_; }

  void fill(double v) { data_.assign(data_.size(), v); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// out(r, c) = sum_k a(r, k) * b(k, c). Sizes must conform.
void matmul(const Matrix& a, const Matrix& b, Matrix& out);

/// out(r, c) = sum_k a(r, k) * b(c, k)  (b used transposed).
void matmul_bt(const Matrix& a, const Matrix& b, Matrix& out);

/// out(r, c) = sum_k a(k, r) * b(k, c)  (a used transposed).
void matmul_at(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace pe::ml
