// Auto-encoder outlier detector (paper model 3).
//
// Dense MLP auto-encoder with the paper's architecture: four hidden layers
// sized [64, 32, 32, 64] around a 32-feature input/output (PyOD's Keras
// auto-encoder). ReLU hidden activations, linear output, MSE loss, Adam.
// Inputs are standardized with a streaming StandardScaler (PyOD also
// standardizes). The anomaly score of a point is its reconstruction error
// (RMSE in scaled space). This is by far the most compute-hungry of the
// three models — the source of the paper's Fig. 3 ranking.
//
// Parameter count note: this core stack has 9,440 weights+biases; the
// paper quotes 11,552 for PyOD's network, which inserts an extra
// input-sized layer (enable via `extra_input_layer`; see DESIGN.md).
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "ml/matrix.h"
#include "ml/model.h"
#include "ml/scaler.h"

namespace pe::ml {

struct AutoEncoderConfig {
  std::vector<std::size_t> hidden_layers = {64, 32, 32, 64};
  /// Prepend an input-sized dense layer like PyOD's implementation.
  bool extra_input_layer = false;
  std::size_t epochs_per_fit = 20;
  std::size_t batch_size = 32;
  /// Cap on rows used for training per partial_fit (a uniform sample of
  /// the block). Scoring always covers every row. 0 = no cap.
  std::size_t max_training_rows = 1024;
  double learning_rate = 1e-3;
  std::uint64_t seed = 47;
};

class AutoEncoder final : public OutlierModel {
 public:
  explicit AutoEncoder(AutoEncoderConfig config = {});

  ModelKind kind() const override { return ModelKind::kAutoEncoder; }
  bool fitted() const override { return initialized_ && scaler_.fitted(); }

  Status fit(const data::DataBlock& block) override;
  Status partial_fit(const data::DataBlock& block) override;
  Result<std::vector<double>> score(
      const data::DataBlock& block) const override;

  Bytes save() const override;
  Status load(const Bytes& bytes) override;
  std::size_t parameter_count() const override;

  const AutoEncoderConfig& config() const { return config_; }
  std::size_t features() const { return features_; }
  /// Mean training loss of the last epoch run (diagnostic).
  double last_loss() const { return last_loss_; }

  // --- parameter access (parameter-server / federated averaging) ---
  const std::vector<std::size_t>& layer_dims() const { return dims_; }
  const std::vector<Matrix>& layer_weights() const { return weights_; }
  const std::vector<std::vector<double>>& layer_biases() const {
    return biases_;
  }
  const StandardScaler& input_scaler() const { return scaler_; }
  /// Replaces all learned parameters; shapes must match layer_dims().
  Status set_parameters(std::vector<Matrix> weights,
                        std::vector<std::vector<double>> biases,
                        StandardScaler scaler);

 private:
  void initialize(std::size_t features);
  /// One optimization pass over the (scaled) block; returns mean loss.
  double train_epoch(const Matrix& x);
  /// Forward pass; fills per-layer activations. activations[0] = input.
  void forward(const Matrix& x, std::vector<Matrix>& activations) const;

  AutoEncoderConfig config_;
  Rng rng_;
  StandardScaler scaler_;
  bool initialized_ = false;
  std::size_t features_ = 0;
  std::vector<std::size_t> dims_;  // full layer widths incl. input/output
  std::vector<Matrix> weights_;    // dims_[i] x dims_[i+1]
  std::vector<std::vector<double>> biases_;
  // Adam state.
  std::vector<Matrix> m_w_, v_w_;
  std::vector<std::vector<double>> m_b_, v_b_;
  std::uint64_t adam_step_ = 0;
  double last_loss_ = 0.0;
};

}  // namespace pe::ml
