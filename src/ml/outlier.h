// Outlier-detection quality metrics.
//
// Given anomaly scores and ground-truth labels (from the synthetic
// generator), computes threshold metrics and ROC-AUC. Used by tests to
// assert the models actually detect the injected outliers, not just burn
// CPU.
#pragma once

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

namespace pe::ml {

struct ClassificationMetrics {
  std::size_t true_positives = 0;
  std::size_t false_positives = 0;
  std::size_t true_negatives = 0;
  std::size_t false_negatives = 0;

  double precision() const {
    const auto d = true_positives + false_positives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
  double recall() const {
    const auto d = true_positives + false_negatives;
    return d == 0 ? 0.0 : static_cast<double>(true_positives) / d;
  }
  double f1() const {
    const double p = precision(), r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

/// Threshold classification: score >= threshold => predicted outlier.
inline ClassificationMetrics evaluate_threshold(
    const std::vector<double>& scores, const std::vector<std::uint8_t>& labels,
    double threshold) {
  ClassificationMetrics m;
  for (std::size_t i = 0; i < scores.size() && i < labels.size(); ++i) {
    const bool predicted = scores[i] >= threshold;
    const bool actual = labels[i] != 0;
    if (predicted && actual) m.true_positives += 1;
    else if (predicted && !actual) m.false_positives += 1;
    else if (!predicted && actual) m.false_negatives += 1;
    else m.true_negatives += 1;
  }
  return m;
}

/// The q-th quantile of the scores (used to derive contamination-based
/// thresholds like PyOD does).
inline double score_quantile(std::vector<double> scores, double q) {
  if (scores.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::sort(scores.begin(), scores.end());
  const double pos = q * static_cast<double>(scores.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, scores.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return scores[lo] * (1.0 - frac) + scores[hi] * frac;
}

/// Area under the ROC curve via the rank-sum (Mann-Whitney) formulation.
inline double roc_auc(const std::vector<double>& scores,
                      const std::vector<std::uint8_t>& labels) {
  const std::size_t n = std::min(scores.size(), labels.size());
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] < scores[b]; });

  double rank_sum_pos = 0.0;
  std::size_t positives = 0;
  std::size_t i = 0;
  while (i < n) {
    // Average ranks over score ties.
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    const double avg_rank = (static_cast<double>(i + 1) +
                             static_cast<double>(j)) / 2.0;
    for (std::size_t k = i; k < j; ++k) {
      if (labels[order[k]] != 0) {
        rank_sum_pos += avg_rank;
        positives += 1;
      }
    }
    i = j;
  }
  const std::size_t negatives = n - positives;
  if (positives == 0 || negatives == 0) return 0.5;
  const double u = rank_sum_pos -
                   static_cast<double>(positives) *
                       (static_cast<double>(positives) + 1.0) / 2.0;
  return u / (static_cast<double>(positives) * static_cast<double>(negatives));
}

}  // namespace pe::ml
