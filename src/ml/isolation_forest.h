// Isolation forest outlier detector (paper model 2; Liu et al. 2008).
//
// 100 randomized trees over subsamples of 256 points (the PyOD defaults
// the paper uses). The anomaly score follows the original formulation:
// s(x) = 2^(-E[h(x)] / c(psi)). Streaming behaviour: partial_fit replaces
// the oldest fraction of trees with trees grown on the new block, so the
// ensemble tracks the stream while older structure ages out.
#pragma once

#include <cstdint>
#include <deque>

#include "common/rng.h"
#include "ml/model.h"

namespace pe::ml {

struct IsolationForestConfig {
  std::size_t trees = 100;      // paper: "a default of 100 ensemble tasks"
  std::size_t subsample = 256;  // psi, PyOD/sklearn default
  /// Fraction of trees rebuilt per partial_fit (streaming refresh).
  double refresh_fraction = 0.1;
  std::uint64_t seed = 29;
};

class IsolationForest final : public OutlierModel {
 public:
  explicit IsolationForest(IsolationForestConfig config = {});

  ModelKind kind() const override { return ModelKind::kIsolationForest; }
  bool fitted() const override { return !forest_.empty(); }

  Status fit(const data::DataBlock& block) override;
  Status partial_fit(const data::DataBlock& block) override;
  Result<std::vector<double>> score(
      const data::DataBlock& block) const override;

  Bytes save() const override;
  Status load(const Bytes& bytes) override;
  std::size_t parameter_count() const override;

  const IsolationForestConfig& config() const { return config_; }
  std::size_t features() const { return features_; }
  std::size_t tree_count() const { return forest_.size(); }

  /// Average path length of a random point in a tree of n samples
  /// (the c(n) normalizer from the paper).
  static double average_path_length(std::size_t n);

 private:
  struct Node {
    // Internal node: split on feature < threshold; children index into the
    // tree's node vector. External node: left == -1, `size` samples.
    std::int32_t left = -1;
    std::int32_t right = -1;
    std::uint32_t feature = 0;
    double threshold = 0.0;
    std::uint32_t size = 0;
  };
  struct Tree {
    std::vector<Node> nodes;
  };

  Tree build_tree(const data::DataBlock& block,
                  const std::vector<std::size_t>& sample);
  std::int32_t build_node(Tree& tree, const data::DataBlock& block,
                          std::vector<std::size_t>& rows, std::size_t begin,
                          std::size_t end, std::size_t depth,
                          std::size_t max_depth);
  double path_length(const Tree& tree, const double* row) const;

  IsolationForestConfig config_;
  Rng rng_;
  std::size_t features_ = 0;
  std::deque<Tree> forest_;  // front = oldest (replaced first)
};

}  // namespace pe::ml
