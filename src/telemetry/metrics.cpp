#include "telemetry/metrics.h"

#include <sstream>

namespace pe::tel {

Counter& MetricsRegistry::counter(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  MutexLock lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, std::uint64_t> MetricsRegistry::counters() const {
  MutexLock lock(mutex_);
  std::map<std::string, std::uint64_t> out;
  for (const auto& [name, c] : counters_) out[name] = c->value();
  return out;
}

std::map<std::string, double> MetricsRegistry::gauges() const {
  MutexLock lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, g] : gauges_) out[name] = g->value();
  return out;
}

std::map<std::string, SummaryStats> MetricsRegistry::histograms() const {
  MutexLock lock(mutex_);
  std::map<std::string, SummaryStats> out;
  for (const auto& [name, h] : histograms_) out[name] = h->summary();
  return out;
}

std::string MetricsRegistry::to_string() const {
  std::ostringstream oss;
  for (const auto& [name, v] : counters()) {
    oss << name << " " << v << "\n";
  }
  for (const auto& [name, v] : gauges()) {
    oss << name << " " << v << "\n";
  }
  for (const auto& [name, s] : histograms()) {
    oss << name << " " << s.to_string() << "\n";
  }
  return oss.str();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

}  // namespace pe::tel
