// MetricsRegistry: named counters, gauges, and histograms.
//
// Components register metrics lazily by name ("broker.bytes_in",
// "pipeline.msgs_processed", ...); reports dump everything. Thread-safe.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/mutex.h"

namespace pe::tel {

class Counter {
 public:
  void add(std::uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class MetricsRegistry {
 public:
  /// Lazily creates on first use; returned references remain valid for the
  /// registry's lifetime.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Sorted snapshots for reporting.
  std::map<std::string, std::uint64_t> counters() const;
  std::map<std::string, double> gauges() const;
  std::map<std::string, SummaryStats> histograms() const;

  /// One line per metric, "name value" / histogram summaries.
  std::string to_string() const;

  /// Process-wide default registry.
  static MetricsRegistry& global();

 private:
  // Registry lock guards the maps only; Counter/Gauge are lock-free and
  // Histogram has its own leaf mutex (histograms() reads summaries while
  // holding this, a one-directional Registry -> Histogram order).
  mutable Mutex mutex_{"tel.registry"};
  std::map<std::string, std::unique_ptr<Counter>> counters_
      PE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_
      PE_GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      PE_GUARDED_BY(mutex_);
};

}  // namespace pe::tel
