#include "telemetry/report.h"

#include <algorithm>
#include <sstream>

namespace pe::tel {
namespace {

double rate(std::size_t count, double seconds) {
  return seconds > 0.0 ? static_cast<double>(count) / seconds : 0.0;
}

double window_seconds(std::uint64_t first_ns, std::uint64_t last_ns) {
  return last_ns > first_ns
             ? static_cast<double>(last_ns - first_ns) / 1e9
             : 0.0;
}

}  // namespace

RunReport build_report(const std::vector<MessageSpan>& spans,
                       std::string label) {
  RunReport report;
  report.label = std::move(label);

  Histogram e2e, ingress, residency, processing;
  std::uint64_t first_produce = 0, last_produce = 0;
  std::uint64_t first_broker = 0, last_broker = 0;
  std::uint64_t first_pstart = 0, last_pend = 0;

  for (const MessageSpan& s : spans) {
    if (!s.complete()) continue;
    report.messages += 1;
    report.payload_bytes += s.payload_bytes;
    report.rows += s.rows;
    e2e.record(s.end_to_end_ms());
    ingress.record(s.ingress_ms());
    residency.record(s.broker_residency_ms());
    processing.record(s.processing_ms());

    auto track = [](std::uint64_t v, std::uint64_t& lo, std::uint64_t& hi) {
      if (v == 0) return;
      if (lo == 0 || v < lo) lo = v;
      if (v > hi) hi = v;
    };
    track(s.produced_ns, first_produce, last_produce);
    track(s.broker_ns, first_broker, last_broker);
    track(s.process_start_ns, first_pstart, last_pend);
    track(s.process_end_ns, first_pstart, last_pend);
  }

  report.window_seconds = window_seconds(first_produce, last_pend);
  report.produce_window_seconds = window_seconds(first_produce, last_produce);
  report.broker_window_seconds = window_seconds(first_broker, last_broker);
  report.process_window_seconds = window_seconds(first_pstart, last_pend);

  report.messages_per_second = rate(report.messages, report.window_seconds);
  report.mbytes_per_second =
      report.window_seconds > 0.0
          ? static_cast<double>(report.payload_bytes) / 1e6 /
                report.window_seconds
          : 0.0;
  report.producer_msgs_per_second =
      rate(report.messages, report.produce_window_seconds);
  report.broker_in_msgs_per_second =
      rate(report.messages, report.broker_window_seconds);
  report.processing_msgs_per_second =
      rate(report.messages, report.process_window_seconds);

  report.end_to_end_ms = e2e.summary();
  report.ingress_ms = ingress.summary();
  report.broker_residency_ms = residency.summary();
  report.processing_ms = processing.summary();
  return report;
}

std::string RunReport::to_string() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(2);
  oss << "=== " << label << " ===\n"
      << "messages:          " << messages << " (" << rows << " rows, "
      << static_cast<double>(payload_bytes) / 1e6 << " MB)\n"
      << "window:            " << window_seconds << " s\n"
      << "throughput:        " << messages_per_second << " msg/s, "
      << mbytes_per_second << " MB/s\n"
      << "component rates:   producer " << producer_msgs_per_second
      << " msg/s | broker-in " << broker_in_msgs_per_second
      << " msg/s | processing " << processing_msgs_per_second << " msg/s\n"
      << "latency e2e [ms]:  " << end_to_end_ms.to_string() << "\n"
      << "  ingress:         " << ingress_ms.to_string() << "\n"
      << "  broker resid.:   " << broker_residency_ms.to_string() << "\n"
      << "  processing:      " << processing_ms.to_string() << "\n";
  return oss.str();
}

std::string RunReport::csv_header() {
  return "label,messages,payload_mb,window_s,msgs_per_s,mb_per_s,"
         "producer_msgs_s,broker_msgs_s,processing_msgs_s,"
         "e2e_ms_mean,e2e_ms_p50,e2e_ms_p99,"
         "ingress_ms_mean,broker_residency_ms_mean,processing_ms_mean";
}

std::string RunReport::to_csv_row() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(3);
  oss << label << ',' << messages << ','
      << static_cast<double>(payload_bytes) / 1e6 << ',' << window_seconds
      << ',' << messages_per_second << ',' << mbytes_per_second << ','
      << producer_msgs_per_second << ',' << broker_in_msgs_per_second << ','
      << processing_msgs_per_second << ',' << end_to_end_ms.mean << ','
      << end_to_end_ms.p50 << ',' << end_to_end_ms.p99 << ','
      << ingress_ms.mean << ',' << broker_residency_ms.mean << ','
      << processing_ms.mean;
  return oss.str();
}

}  // namespace pe::tel
