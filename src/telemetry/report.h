// RunReport: aggregates completed spans into the numbers the paper plots.
//
// For each run the report carries message/byte throughput per component
// window (producer, broker, processing) and latency distributions per
// stage — the exact quantities of Fig. 2 and Fig. 3.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "telemetry/span.h"

namespace pe::tel {

struct RunReport {
  std::string label;
  std::size_t messages = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t rows = 0;

  /// Wall-clock seconds from first produce to last processing end.
  double window_seconds = 0.0;
  /// Producer-side window: first to last produce.
  double produce_window_seconds = 0.0;
  /// Broker ingest window: first to last broker append.
  double broker_window_seconds = 0.0;
  /// Processing window: first process start to last process end.
  double process_window_seconds = 0.0;

  // Throughput, end-to-end window based.
  double messages_per_second = 0.0;
  double mbytes_per_second = 0.0;
  // Component rates (paper: used to find the bottleneck component).
  double producer_msgs_per_second = 0.0;
  double broker_in_msgs_per_second = 0.0;
  double processing_msgs_per_second = 0.0;

  // Stage latency distributions (milliseconds).
  SummaryStats end_to_end_ms;
  SummaryStats ingress_ms;
  SummaryStats broker_residency_ms;
  SummaryStats processing_ms;

  /// Multi-line human-readable block.
  std::string to_string() const;
  /// Single CSV row (see csv_header()).
  std::string to_csv_row() const;
  static std::string csv_header();
};

/// Builds a report from completed spans. Incomplete spans are ignored.
RunReport build_report(const std::vector<MessageSpan>& spans,
                       std::string label = "");

}  // namespace pe::tel
