// MessageSpan: the per-message record linking timestamps across components.
//
// The paper stresses that Pilot-Edge "captures and links comprehensive
// metrics across all involved components ... allowing easy identification
// of bottlenecks" (§III-1, used to spot that the broker outpaces the
// consumers at 4 partitions). A span carries one timestamp per pipeline
// stage, joined by the unique message id.
#pragma once

#include <cstdint>
#include <string>

namespace pe::tel {

struct MessageSpan {
  std::uint64_t message_id = 0;
  std::string producer_id;
  std::uint32_t partition = 0;
  std::uint64_t payload_bytes = 0;
  std::uint64_t rows = 0;

  // Stage timestamps (Clock::now_ns); 0 = stage not reached.
  std::uint64_t produced_ns = 0;       // data generated on the edge
  std::uint64_t edge_processed_ns = 0; // edge processing done (hybrid mode)
  std::uint64_t sent_ns = 0;           // producer send acknowledged
  std::uint64_t broker_ns = 0;         // broker append
  std::uint64_t consumed_ns = 0;       // consumer received
  std::uint64_t process_start_ns = 0;  // cloud processing began
  std::uint64_t process_end_ns = 0;    // cloud processing finished

  bool complete() const { return produced_ns != 0 && process_end_ns != 0; }

  // --- derived stage latencies in milliseconds (0 if stage missing) ---
  static double ms_between(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0 || b < a) return 0.0;
    return static_cast<double>(b - a) / 1e6;
  }

  /// Produce -> processing done: the paper's end-to-end latency.
  double end_to_end_ms() const { return ms_between(produced_ns, process_end_ns); }
  /// Produce -> broker append (edge side + uplink).
  double ingress_ms() const { return ms_between(produced_ns, broker_ns); }
  /// Broker append -> consumer receipt (broker residency + downlink);
  /// grows when the processing side is the bottleneck.
  double broker_residency_ms() const { return ms_between(broker_ns, consumed_ns); }
  /// Consumer receipt -> processing start (consumer-side queueing).
  double consumer_queue_ms() const { return ms_between(consumed_ns, process_start_ns); }
  /// Pure model compute time.
  double processing_ms() const { return ms_between(process_start_ns, process_end_ns); }
};

}  // namespace pe::tel
