// SpanCollector: thread-safe store for in-flight and completed spans.
//
// Every pipeline stage stamps its timestamp through the collector; the
// report module then derives throughput and latency distributions from
// the completed spans.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "common/mutex.h"
#include "telemetry/span.h"

namespace pe::tel {

class SpanCollector {
 public:
  /// Registers a new message at produce time.
  void on_produced(std::uint64_t message_id, const std::string& producer_id,
                   std::uint32_t partition, std::uint64_t payload_bytes,
                   std::uint64_t rows, std::uint64_t produced_ns);

  void on_edge_processed(std::uint64_t message_id, std::uint64_t ts_ns);
  void on_sent(std::uint64_t message_id, std::uint64_t ts_ns);
  void on_broker(std::uint64_t message_id, std::uint64_t ts_ns);
  void on_consumed(std::uint64_t message_id, std::uint64_t ts_ns);
  void on_process_start(std::uint64_t message_id, std::uint64_t ts_ns);
  void on_process_end(std::uint64_t message_id, std::uint64_t ts_ns);

  /// Number of spans whose processing finished.
  std::size_t completed_count() const;
  std::size_t total_count() const;

  /// Snapshot of all spans (completed and in-flight).
  std::vector<MessageSpan> snapshot() const;

  /// Snapshot of completed spans only.
  std::vector<MessageSpan> completed() const;

  void clear();

 private:
  template <typename F>
  void update(std::uint64_t message_id, F&& f) {
    MutexLock lock(mutex_);
    auto it = spans_.find(message_id);
    if (it != spans_.end()) f(it->second);
  }

  mutable Mutex mutex_{"tel.spans"};
  std::map<std::uint64_t, MessageSpan> spans_ PE_GUARDED_BY(mutex_);
};

}  // namespace pe::tel
