// Energy accounting for edge-to-cloud runs (paper §V future work:
// "investigate further scheduling and approaches, e.g., energy
// consumption").
//
// First-order model: a device class draws idle power for the whole run
// window, additional active power for the seconds its cores are busy, and
// the network charges an energy-per-byte toll per traffic class. The
// numbers are configurable; defaults follow commonly cited figures
// (RasPi-class device ~2.7 W idle / ~6.4 W busy; one server core ~4 W
// idle share / ~14 W busy; WAN ~40 nJ/byte, LAN ~5 nJ/byte).
#pragma once

#include <cstdint>
#include <string>

#include "telemetry/report.h"

namespace pe::tel {

/// Power draw of one device of a class.
struct PowerSpec {
  double idle_watts = 0.0;
  double busy_watts = 0.0;  // additional draw at full utilization
};

struct EnergyModelConfig {
  PowerSpec edge_device{2.7, 3.7};   // RasPi 4 class
  PowerSpec cloud_core{4.0, 10.0};   // per-core share of a server
  double wan_joules_per_byte = 40e-9;
  double lan_joules_per_byte = 5e-9;
};

/// What one run consumed, by component, in joules.
struct EnergyBreakdown {
  double edge_idle_j = 0.0;
  double edge_active_j = 0.0;
  double cloud_idle_j = 0.0;
  double cloud_active_j = 0.0;
  double wan_transfer_j = 0.0;
  double lan_transfer_j = 0.0;

  double total_j() const {
    return edge_idle_j + edge_active_j + cloud_idle_j + cloud_active_j +
           wan_transfer_j + lan_transfer_j;
  }
  /// Joules per payload megabyte moved end to end.
  double joules_per_mb(double payload_mb) const {
    return payload_mb > 0.0 ? total_j() / payload_mb : 0.0;
  }
  std::string to_string() const;
};

/// Inputs extracted from a run.
struct EnergyInputs {
  double window_seconds = 0.0;
  /// Seconds of busy edge-device compute (sum over devices).
  double edge_busy_seconds = 0.0;
  /// Seconds of busy cloud-core compute (sum over processing tasks).
  double cloud_busy_seconds = 0.0;
  std::size_t edge_devices = 0;
  std::size_t cloud_cores = 0;
  std::uint64_t wan_bytes = 0;
  std::uint64_t lan_bytes = 0;
};

class EnergyModel {
 public:
  explicit EnergyModel(EnergyModelConfig config = {});

  const EnergyModelConfig& config() const { return config_; }

  EnergyBreakdown estimate(const EnergyInputs& inputs) const;

  /// Convenience: derives busy seconds from a run report (processing time
  /// from spans; edge busy time approximated by the produce window share).
  EnergyInputs inputs_from_run(const RunReport& report,
                               std::size_t edge_devices,
                               std::size_t cloud_cores,
                               std::uint64_t wan_bytes,
                               std::uint64_t lan_bytes) const;

 private:
  EnergyModelConfig config_;
};

}  // namespace pe::tel
