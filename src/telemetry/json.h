// Minimal JSON writer + JSON serialization of run reports.
//
// Experiment results need to leave the process in a machine-readable form
// (the paper's monitoring step feeds dashboards); this avoids an external
// JSON dependency for the one direction we need (writing).
#pragma once

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "telemetry/report.h"

namespace pe::tel {

/// Streaming JSON object/array writer with correct string escaping.
/// Usage:
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value("run-1");
///   w.key("count").value(42);
///   w.end_object();
///   std::string json = w.str();
class JsonWriter {
 public:
  JsonWriter& begin_object() {
    separator();
    out_ << '{';
    stack_.push_back(kFirstInContainer);
    return *this;
  }
  JsonWriter& end_object() {
    out_ << '}';
    pop();
    return *this;
  }
  JsonWriter& begin_array() {
    separator();
    out_ << '[';
    stack_.push_back(kFirstInContainer);
    return *this;
  }
  JsonWriter& end_array() {
    out_ << ']';
    pop();
    return *this;
  }

  JsonWriter& key(const std::string& name) {
    separator();
    write_string(name);
    out_ << ':';
    pending_value_ = true;
    return *this;
  }

  JsonWriter& value(const std::string& v) {
    separator();
    write_string(v);
    return *this;
  }
  JsonWriter& value(const char* v) { return value(std::string(v)); }
  JsonWriter& value(double v) {
    separator();
    if (std::isfinite(v)) {
      std::ostringstream oss;
      oss.precision(12);
      oss << v;
      out_ << oss.str();
    } else {
      out_ << "null";  // JSON has no inf/nan
    }
    return *this;
  }
  JsonWriter& value(std::uint64_t v) {
    separator();
    out_ << v;
    return *this;
  }
  JsonWriter& value(std::int64_t v) {
    separator();
    out_ << v;
    return *this;
  }
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v) {
    separator();
    out_ << (v ? "true" : "false");
    return *this;
  }

  std::string str() const { return out_.str(); }

 private:
  static constexpr int kFirstInContainer = 0;
  static constexpr int kHasItems = 1;

  void separator() {
    if (pending_value_) {
      pending_value_ = false;
      return;  // directly after a key: no comma
    }
    if (!stack_.empty()) {
      if (stack_.back() == kHasItems) out_ << ',';
      stack_.back() = kHasItems;
    }
  }
  void pop() {
    if (!stack_.empty()) stack_.pop_back();
  }
  void write_string(const std::string& s) {
    out_ << '"';
    for (char c : s) {
      switch (c) {
        case '"': out_ << "\\\""; break;
        case '\\': out_ << "\\\\"; break;
        case '\n': out_ << "\\n"; break;
        case '\r': out_ << "\\r"; break;
        case '\t': out_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out_ << buf;
          } else {
            out_ << c;
          }
      }
    }
    out_ << '"';
  }

  std::ostringstream out_;
  std::vector<int> stack_;
  bool pending_value_ = false;
};

/// Serializes summary stats as a JSON object.
void write_summary(JsonWriter& w, const SummaryStats& stats);

/// Full run report as a JSON document.
std::string to_json(const RunReport& report);

}  // namespace pe::tel
