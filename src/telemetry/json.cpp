#include "telemetry/json.h"

#include <cmath>

namespace pe::tel {

void write_summary(JsonWriter& w, const SummaryStats& stats) {
  w.begin_object();
  w.key("count").value(static_cast<std::uint64_t>(stats.count));
  w.key("mean").value(stats.mean);
  w.key("stddev").value(stats.stddev);
  w.key("min").value(stats.min);
  w.key("p50").value(stats.p50);
  w.key("p90").value(stats.p90);
  w.key("p99").value(stats.p99);
  w.key("max").value(stats.max);
  w.end_object();
}

std::string to_json(const RunReport& report) {
  JsonWriter w;
  w.begin_object();
  w.key("label").value(report.label);
  w.key("messages").value(static_cast<std::uint64_t>(report.messages));
  w.key("payload_bytes").value(report.payload_bytes);
  w.key("rows").value(report.rows);
  w.key("window_seconds").value(report.window_seconds);
  w.key("messages_per_second").value(report.messages_per_second);
  w.key("mbytes_per_second").value(report.mbytes_per_second);
  w.key("component_rates");
  w.begin_object();
  w.key("producer_msgs_per_second").value(report.producer_msgs_per_second);
  w.key("broker_in_msgs_per_second").value(report.broker_in_msgs_per_second);
  w.key("processing_msgs_per_second")
      .value(report.processing_msgs_per_second);
  w.end_object();
  w.key("latency_ms");
  w.begin_object();
  w.key("end_to_end");
  write_summary(w, report.end_to_end_ms);
  w.key("ingress");
  write_summary(w, report.ingress_ms);
  w.key("broker_residency");
  write_summary(w, report.broker_residency_ms);
  w.key("processing");
  write_summary(w, report.processing_ms);
  w.end_object();
  w.end_object();
  return w.str();
}

}  // namespace pe::tel
