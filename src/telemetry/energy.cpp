#include "telemetry/energy.h"

#include <algorithm>
#include <sstream>

namespace pe::tel {

EnergyModel::EnergyModel(EnergyModelConfig config) : config_(config) {}

EnergyBreakdown EnergyModel::estimate(const EnergyInputs& in) const {
  EnergyBreakdown out;
  const double window = std::max(0.0, in.window_seconds);

  out.edge_idle_j = config_.edge_device.idle_watts *
                    static_cast<double>(in.edge_devices) * window;
  out.edge_active_j =
      config_.edge_device.busy_watts * std::max(0.0, in.edge_busy_seconds);

  out.cloud_idle_j = config_.cloud_core.idle_watts *
                     static_cast<double>(in.cloud_cores) * window;
  out.cloud_active_j =
      config_.cloud_core.busy_watts * std::max(0.0, in.cloud_busy_seconds);

  out.wan_transfer_j =
      config_.wan_joules_per_byte * static_cast<double>(in.wan_bytes);
  out.lan_transfer_j =
      config_.lan_joules_per_byte * static_cast<double>(in.lan_bytes);
  return out;
}

EnergyInputs EnergyModel::inputs_from_run(const RunReport& report,
                                          std::size_t edge_devices,
                                          std::size_t cloud_cores,
                                          std::uint64_t wan_bytes,
                                          std::uint64_t lan_bytes) const {
  EnergyInputs in;
  in.window_seconds = report.window_seconds;
  // Edge devices are busy while producing; approximate busy time by the
  // produce window (each device streams continuously during it).
  in.edge_busy_seconds =
      report.produce_window_seconds * static_cast<double>(edge_devices);
  // Cloud busy time: sum of per-message processing times.
  in.cloud_busy_seconds = report.processing_ms.mean / 1e3 *
                          static_cast<double>(report.messages);
  in.edge_devices = edge_devices;
  in.cloud_cores = cloud_cores;
  in.wan_bytes = wan_bytes;
  in.lan_bytes = lan_bytes;
  return in;
}

std::string EnergyBreakdown::to_string() const {
  std::ostringstream oss;
  oss.setf(std::ios::fixed);
  oss.precision(1);
  oss << "energy [J]: total " << total_j() << " (edge " << edge_idle_j
      << "+" << edge_active_j << ", cloud " << cloud_idle_j << "+"
      << cloud_active_j << ", wan " << wan_transfer_j << ", lan "
      << lan_transfer_j << ")";
  return oss.str();
}

}  // namespace pe::tel
