#include "telemetry/collector.h"

namespace pe::tel {

void SpanCollector::on_produced(std::uint64_t message_id,
                                const std::string& producer_id,
                                std::uint32_t partition,
                                std::uint64_t payload_bytes,
                                std::uint64_t rows,
                                std::uint64_t produced_ns) {
  MutexLock lock(mutex_);
  MessageSpan& span = spans_[message_id];
  span.message_id = message_id;
  span.producer_id = producer_id;
  span.partition = partition;
  span.payload_bytes = payload_bytes;
  span.rows = rows;
  span.produced_ns = produced_ns;
}

void SpanCollector::on_edge_processed(std::uint64_t id, std::uint64_t ts) {
  update(id, [ts](MessageSpan& s) { s.edge_processed_ns = ts; });
}
void SpanCollector::on_sent(std::uint64_t id, std::uint64_t ts) {
  update(id, [ts](MessageSpan& s) { s.sent_ns = ts; });
}
void SpanCollector::on_broker(std::uint64_t id, std::uint64_t ts) {
  update(id, [ts](MessageSpan& s) { s.broker_ns = ts; });
}
void SpanCollector::on_consumed(std::uint64_t id, std::uint64_t ts) {
  update(id, [ts](MessageSpan& s) { s.consumed_ns = ts; });
}
void SpanCollector::on_process_start(std::uint64_t id, std::uint64_t ts) {
  update(id, [ts](MessageSpan& s) { s.process_start_ns = ts; });
}
void SpanCollector::on_process_end(std::uint64_t id, std::uint64_t ts) {
  update(id, [ts](MessageSpan& s) { s.process_end_ns = ts; });
}

std::size_t SpanCollector::completed_count() const {
  MutexLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [_, s] : spans_) {
    if (s.complete()) n += 1;
  }
  return n;
}

std::size_t SpanCollector::total_count() const {
  MutexLock lock(mutex_);
  return spans_.size();
}

std::vector<MessageSpan> SpanCollector::snapshot() const {
  MutexLock lock(mutex_);
  std::vector<MessageSpan> out;
  out.reserve(spans_.size());
  for (const auto& [_, s] : spans_) out.push_back(s);
  return out;
}

std::vector<MessageSpan> SpanCollector::completed() const {
  MutexLock lock(mutex_);
  std::vector<MessageSpan> out;
  for (const auto& [_, s] : spans_) {
    if (s.complete()) out.push_back(s);
  }
  return out;
}

void SpanCollector::clear() {
  MutexLock lock(mutex_);
  spans_.clear();
}

}  // namespace pe::tel
