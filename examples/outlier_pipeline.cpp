// Outlier-detection pipeline: the paper's core ML scenario end to end.
//
// Four simulated edge devices stream sensor blocks into a pilot-managed
// broker; cloud tasks keep three models updated (k-means, isolation
// forest, auto-encoder) and score every block. After each run the example
// prints detection quality against the generator's ground truth plus the
// per-stage telemetry — showing both *what* was detected and *what it
// cost*, the trade-off at the heart of the paper.
//
// Build & run:  ./build/examples/outlier_pipeline [model]
//   model: kmeans (default) | iforest | ae | baseline
#include <cstdio>
#include <string>

#include "pilot_edge.h"

int main(int argc, char** argv) {
  using namespace pe;
  Logger::set_level(LogLevel::kWarn);

  const std::string model_name = argc > 1 ? argv[1] : "kmeans";
  auto kind = ml::parse_model_kind(model_name);
  if (!kind.ok()) {
    std::fprintf(stderr, "unknown model '%s'\n", model_name.c_str());
    return 1;
  }

  auto fabric = net::Fabric::make_single_site_topology();
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, options);
  auto edge = pm.submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                           4, 16.0))
                  .value();
  auto cloud = pm.submit(res::Flavors::lrz_large()).value();
  auto broker = pm.submit(res::Flavors::make(
                              "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                    .value();
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  // Ground truth accounting: every scored block is compared to the
  // generator labels carried in the block.
  struct Quality {
    std::mutex mutex;
    Histogram auc;
    std::uint64_t true_outliers = 0;
    std::uint64_t rows = 0;
  };
  auto quality = std::make_shared<Quality>();

  // Wrap the built-in model function with an accuracy probe.
  auto model_factory = core::functions::make_model_process(kind.value());
  auto probed_factory = [model_factory, quality]() -> core::ProcessFn {
    auto inner = model_factory();
    return [inner, quality](core::FunctionContext& ctx,
                            data::DataBlock block)
               -> Result<core::ProcessResult> {
      const auto labels = block.labels;  // keep before move
      auto result = inner(ctx, std::move(block));
      if (!result.ok()) return result;
      if (!labels.empty() && !result.value().scores.empty()) {
        std::lock_guard<std::mutex> lock(quality->mutex);
        quality->auc.record(ml::roc_auc(result.value().scores, labels));
        for (auto l : labels) quality->true_outliers += l;
        quality->rows += labels.size();
      }
      return result;
    };
  };

  core::PipelineConfig config;
  config.edge_devices = 4;
  config.messages_per_device = 8;
  config.rows_per_message = 1000;
  config.topic = "sensors";
  core::EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(core::functions::make_generator_produce({}, 1000))
      .set_process_cloud_function(probed_factory);

  std::printf("running outlier pipeline with model '%s'...\n",
              ml::to_string(kind.value()));
  auto report = pipeline.run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
    return 1;
  }

  std::printf("\n%s\n", report.value().run.to_string().c_str());
  std::printf("flagged outliers: %llu (injected: %llu of %llu rows)\n",
              static_cast<unsigned long long>(report.value().outliers_detected),
              static_cast<unsigned long long>(quality->true_outliers),
              static_cast<unsigned long long>(quality->rows));
  if (quality->auc.count() > 0) {
    std::printf("per-message ROC-AUC vs ground truth: mean %.3f (min %.3f)\n",
                quality->auc.mean(), quality->auc.min());
  }
  std::printf("parameter service: %llu model publishes\n",
              static_cast<unsigned long long>(
                  report.value().parameter_server.sets));
  return 0;
}
