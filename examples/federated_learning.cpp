// Federated learning across the continuum (paper §V future work).
//
// Three edge sites each train a local auto-encoder on their own private
// data (the raw data never leaves the site). Each round, the serialized
// local models travel through the parameter service to the cloud, are
// combined with FedAvg, and the global model is pushed back. Only model
// weights (~75 KB) cross the WAN — versus megabytes of raw data for the
// cloud-centric alternative, whose traffic the example prints for
// comparison.
//
// Build & run:  ./build/examples/federated_learning
#include <cstdio>

#include "ml/federated.h"
#include "pilot_edge.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kWarn);

  // Three edge sites + one cloud, all linked over WAN-class links.
  auto fabric = std::make_shared<net::Fabric>();
  (void)fabric->add_site({.id = "cloud", .kind = net::SiteKind::kCloud,
                          .region = "eu-de", .description = "aggregator"});
  for (int i = 0; i < 3; ++i) {
    const std::string site = "edge-" + std::to_string(i);
    (void)fabric->add_site({.id = site, .kind = net::SiteKind::kEdge,
                            .region = "plant-" + std::to_string(i),
                            .description = "factory site"});
    net::LinkSpec wan;
    wan.from = site;
    wan.to = "cloud";
    wan.latency_min = std::chrono::milliseconds(20);
    wan.latency_max = std::chrono::milliseconds(40);
    wan.bandwidth_min_bps = 50e6;
    wan.bandwidth_max_bps = 100e6;
    (void)fabric->add_bidirectional_link(wan);
  }

  // One pilot per edge site to run local training; parameter server on
  // the cloud for model exchange.
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, options);
  std::vector<res::PilotPtr> edge_pilots;
  for (int i = 0; i < 3; ++i) {
    edge_pilots.push_back(
        pm.submit(res::Flavors::raspi("edge-" + std::to_string(i), 2))
            .value());
  }
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  auto server = std::make_shared<ps::ParameterServer>("cloud");

  constexpr int kRounds = 3;
  constexpr std::size_t kLocalRows = 5000;
  ml::AutoEncoderConfig ae_config;
  ae_config.epochs_per_fit = 8;
  ae_config.seed = 2024;  // common initialization across parties

  // Seed the global model so every party starts from the same weights.
  {
    ml::AutoEncoder global(ae_config);
    data::GeneratorConfig warm;
    warm.seed = 1;
    data::Generator gen(warm);
    if (!global.fit(gen.generate(64)).ok()) return 1;
    server->set("fed/global", global.save());
  }

  std::uint64_t raw_bytes_not_shipped = 0;
  for (int round = 1; round <= kRounds; ++round) {
    std::printf("--- round %d ---\n", round);
    // Each edge pilot runs a local-training task against its own data.
    std::vector<exec::TaskHandle> handles;
    for (std::size_t p = 0; p < edge_pilots.size(); ++p) {
      exec::TaskSpec spec;
      spec.name = "local-train-" + std::to_string(p);
      spec.fn = [&, p, round](exec::TaskContext&) -> Status {
        ps::ParameterClient client(server, fabric,
                                   "edge-" + std::to_string(p));
        // Pull the current global model.
        auto global_bytes = client.get("fed/global");
        if (!global_bytes.ok()) return global_bytes.status();
        ml::AutoEncoder local(ae_config);
        if (auto s = local.load(global_bytes.value().value); !s.ok()) {
          return s;
        }
        // Local, private data: never leaves the site.
        data::GeneratorConfig local_data;
        local_data.seed = 1000 + p * 97 + round;
        local_data.clusters = 5;
        data::Generator gen(local_data);
        auto block = gen.generate(kLocalRows);
        if (auto s = local.partial_fit(block); !s.ok()) return s;
        // Ship only the model delta (full weights here).
        if (auto s = client.set("fed/party-" + std::to_string(p),
                                local.save());
            !s.ok()) {
          return s.status();
        }
        return Status::Ok();
      };
      auto handle = edge_pilots[p]->cluster()->submit(std::move(spec));
      if (!handle.ok()) return 1;
      handles.push_back(std::move(handle).value());
    }
    for (auto& h : handles) {
      if (auto s = h.wait(); !s.ok()) {
        std::fprintf(stderr, "local training failed: %s\n",
                     s.to_string().c_str());
        return 1;
      }
    }
    raw_bytes_not_shipped += 3 * kLocalRows * 32 * 8;

    // Aggregate on the cloud.
    std::vector<Bytes> locals;
    for (std::size_t p = 0; p < edge_pilots.size(); ++p) {
      locals.push_back(
          server->get("fed/party-" + std::to_string(p)).value().value);
    }
    auto averaged = ml::fed::average_autoencoders(
        locals, {kLocalRows, kLocalRows, kLocalRows});
    if (!averaged.ok()) {
      std::fprintf(stderr, "fedavg failed: %s\n",
                   averaged.status().to_string().c_str());
      return 1;
    }
    server->set("fed/global", averaged.value());

    // Evaluate the global model on held-out data with injected outliers.
    ml::AutoEncoder global;
    if (!global.load(averaged.value()).ok()) return 1;
    data::GeneratorConfig held_out;
    held_out.seed = 4242;
    held_out.clusters = 5;
    data::Generator gen(held_out);
    auto eval = gen.generate(1500);
    auto scores = global.score(eval);
    if (scores.ok()) {
      std::printf("  global model ROC-AUC on held-out data: %.3f\n",
                  ml::roc_auc(scores.value(), eval.labels));
    }
  }

  const auto links = fabric->link_stats();
  std::uint64_t model_bytes = 0;
  for (const auto& [name, stats] : links) {
    if (name.find("edge-") == 0 || name.find("->edge-") != std::string::npos) {
      model_bytes += stats.bytes;
    }
  }
  std::printf(
      "\nWAN traffic for %d federated rounds: %.2f MB of model weights\n"
      "(cloud-centric training would have shipped %.2f MB of raw data)\n",
      kRounds, static_cast<double>(model_bytes) / 1e6,
      static_cast<double>(raw_bytes_not_shipped) / 1e6);
  return 0;
}
