// Quickstart: the smallest complete Pilot-Edge application.
//
// Mirrors the paper's Fig. 1 flow:
//   step 1 — acquire pilots (edge device, cloud VM, broker service);
//   step 2 — wire an EdgeToCloudPipeline with produce/process functions
//            (Listing 1 + Listing 2) and run it;
//   step 3 — inspect the monitoring report.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "pilot_edge.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kInfo);

  // --- step 1: resource acquisition via the pilot abstraction ---------
  auto fabric = net::Fabric::make_single_site_topology();
  (void)fabric->add_site(
      {.id = "factory-floor", .kind = net::SiteKind::kEdge,
       .region = "eu-de", .description = "edge gateway"});
  net::LinkSpec uplink;
  uplink.from = "factory-floor";
  uplink.to = "lrz-eu";
  uplink.latency_min = std::chrono::milliseconds(5);
  uplink.latency_max = std::chrono::milliseconds(10);
  uplink.bandwidth_min_bps = 100e6;
  uplink.bandwidth_max_bps = 100e6;
  (void)fabric->add_bidirectional_link(uplink);

  res::PilotManager pm(fabric);
  auto edge = pm.submit(res::Flavors::raspi("factory-floor")).value();
  auto cloud = pm.submit(res::Flavors::lrz_medium()).value();
  auto broker = pm.submit(res::Flavors::make(
                              "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                    .value();
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "pilot acquisition failed: %s\n",
                 s.to_string().c_str());
    return 1;
  }
  std::printf("pilots active: %s | %s | %s\n", edge->id().c_str(),
              cloud->id().c_str(), broker->id().c_str());

  // --- step 2: define functions and run the pipeline ------------------
  core::PipelineConfig config;
  config.edge_devices = 1;
  config.messages_per_device = 16;
  config.rows_per_message = 500;
  config.function_context.set("application", "quickstart");

  core::EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(core::functions::make_generator_produce({}, 500))
      .set_process_cloud_function(
          core::functions::make_model_process(ml::ModelKind::kKMeans));

  auto report = pipeline.run();
  if (!report.ok()) {
    std::fprintf(stderr, "pipeline failed: %s\n",
                 report.status().to_string().c_str());
    return 1;
  }

  // --- step 3: monitoring ---------------------------------------------
  std::printf("\n%s\n", report.value().run.to_string().c_str());
  std::printf("outliers flagged: %llu of %llu messages\n",
              static_cast<unsigned long long>(report.value().outliers_detected),
              static_cast<unsigned long long>(
                  report.value().messages_processed));
  return 0;
}
