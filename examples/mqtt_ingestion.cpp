// MQTT ingestion: constrained devices publish through the MQTT plugin.
//
// The paper's architecture encapsulates brokering behind a plugin
// mechanism and names MQTT as the option "for low-performance and
// low-power environments" (§II-B). This example runs the same
// outlier-detection pipeline twice — once with devices producing directly
// to the Kafka-model broker, once publishing via a lightweight MQTT
// broker on the edge gateway with a bridge forwarding into the topic —
// and compares the telemetry.
//
// It also demonstrates MQTT-side device management: a retained "status"
// topic and a last-will that announces device death to the gateway.
//
// Build & run:  ./build/examples/mqtt_ingestion
#include <cstdio>

#include "pilot_edge.h"

namespace {

pe::core::PipelineRunReport run_with(
    pe::core::IngestPath ingest,
    const std::shared_ptr<pe::net::Fabric>& fabric,
    const pe::res::PilotPtr& edge, const pe::res::PilotPtr& cloud,
    const pe::res::PilotPtr& broker, const char* topic) {
  using namespace pe;
  core::PipelineConfig config;
  config.ingest = ingest;
  config.edge_devices = 3;
  config.messages_per_device = 8;
  config.rows_per_message = 200;
  config.topic = topic;
  config.run_timeout = std::chrono::minutes(5);

  core::EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(core::functions::make_generator_produce({}, 200))
      .set_process_cloud_function(
          core::functions::make_model_process(ml::ModelKind::kKMeans));
  auto report = pipeline.run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(report).value();
}

}  // namespace

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kWarn);

  auto fabric = net::Fabric::make_single_site_topology();
  (void)fabric->add_site({.id = "plant-floor", .kind = net::SiteKind::kEdge,
                          .region = "eu-de",
                          .description = "sensing gateway"});
  net::LinkSpec uplink;
  uplink.from = "plant-floor";
  uplink.to = "lrz-eu";
  uplink.latency_min = std::chrono::milliseconds(3);
  uplink.latency_max = std::chrono::milliseconds(8);
  uplink.bandwidth_min_bps = 200e6;
  uplink.bandwidth_max_bps = 200e6;
  (void)fabric->add_bidirectional_link(uplink);

  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, options);
  auto edge = pm.submit(res::Flavors::raspi("plant-floor", 3)).value();
  auto cloud = pm.submit(res::Flavors::lrz_large()).value();
  auto broker = pm.submit(res::Flavors::make(
                              "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                    .value();
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("running with direct Kafka-model ingestion...\n");
  const auto direct = run_with(core::IngestPath::kKafkaDirect, fabric, edge,
                               cloud, broker, "ingest-direct");
  std::printf("%s\n", direct.run.to_string().c_str());

  std::printf("running with MQTT ingestion (QoS 1 + bridge)...\n");
  const auto bridged = run_with(core::IngestPath::kMqttBridge, fabric, edge,
                                cloud, broker, "ingest-mqtt");
  std::printf("%s\n", bridged.run.to_string().c_str());

  std::printf(
      "MQTT path adds a broker hop: e2e latency %.1f ms vs %.1f ms direct "
      "(%.2fx)\n\n",
      bridged.run.end_to_end_ms.mean, direct.run.end_to_end_ms.mean,
      direct.run.end_to_end_ms.mean > 0
          ? bridged.run.end_to_end_ms.mean / direct.run.end_to_end_ms.mean
          : 0.0);

  // --- MQTT device management: retained status + last will -------------
  auto device_broker = std::make_shared<mqtt::MqttBroker>("plant-floor");
  mqtt::MqttClient monitor(device_broker, fabric, "lrz-eu", "monitor");
  (void)monitor.connect();
  (void)monitor.subscribe("devices/+/status");

  mqtt::SessionOptions fragile_session;
  mqtt::Message will;
  will.topic = "devices/sensor-7/status";
  will.payload = {'d', 'e', 'a', 'd'};
  will.retain = true;
  fragile_session.will = will;
  {
    mqtt::MqttClient sensor(device_broker, fabric, "plant-floor", "sensor-7");
    (void)sensor.connect(fragile_session);
    mqtt::Message alive;
    alive.topic = "devices/sensor-7/status";
    alive.payload = {'u', 'p'};
    alive.retain = true;
    (void)sensor.publish(std::move(alive));
    (void)sensor.die();  // battery pulled: the will fires
  }
  auto notifications = monitor.poll();
  if (notifications.ok()) {
    for (const auto& m : notifications.value()) {
      std::printf("monitor saw %s = %.*s%s\n", m.topic.c_str(),
                  static_cast<int>(m.payload.size()),
                  reinterpret_cast<const char*>(m.payload.data()),
                  m.retained_replay ? " (retained)" : "");
    }
  }
  return 0;
}
