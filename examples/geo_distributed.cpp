// Geo-distributed deployment: the paper's US-edge -> EU-cloud scenario,
// with the placement advisor choosing the deployment mode.
//
// Reproduces the §III-2 setup: data source on Jetstream (US), broker and
// processing on LRZ (EU), WAN at 140-160 ms RTT and 60-100 Mbit/s. Before
// running, the placement cost model scores cloud-centric vs edge-centric
// vs hybrid for the chosen workload; the example then runs both
// cloud-centric and hybrid so the predicted and measured trade-off can be
// compared directly.
//
// Build & run:  ./build/examples/geo_distributed
// (WAN is emulated 10x faster than real time; see PE_TIME_SCALE.)
#include <cstdio>
#include <cstdlib>

#include "pilot_edge.h"

namespace {

pe::core::PipelineRunReport run_mode(
    const std::shared_ptr<pe::net::Fabric>& fabric,
    const pe::res::PilotPtr& edge, const pe::res::PilotPtr& cloud,
    const pe::res::PilotPtr& broker, pe::core::DeploymentMode mode,
    const char* topic) {
  using namespace pe;
  core::PipelineConfig config;
  config.edge_devices = 2;
  config.messages_per_device = 6;
  config.rows_per_message = 5000;
  config.mode = mode;
  config.topic = topic;
  config.run_timeout = std::chrono::minutes(10);

  core::EdgeToCloudPipeline pipeline(config);
  pipeline.set_fabric(fabric)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(core::functions::make_generator_produce({}, 5000))
      .set_process_cloud_function(
          core::functions::make_model_process(ml::ModelKind::kKMeans));
  if (mode == core::DeploymentMode::kHybrid) {
    pipeline.set_process_edge_function(core::functions::make_aggregate_edge(8));
  }
  auto report = pipeline.run();
  if (!report.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 report.status().to_string().c_str());
    std::exit(1);
  }
  return std::move(report).value();
}

}  // namespace

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kWarn);
  const char* scale_env = std::getenv("PE_TIME_SCALE");
  Clock::set_time_scale(scale_env ? std::atof(scale_env) : 10.0);

  auto fabric = net::Fabric::make_paper_topology();
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, options);
  auto edge = pm.submit(res::Flavors::jetstream_medium()).value();
  auto cloud = pm.submit(res::Flavors::lrz_large()).value();
  auto broker = pm.submit(res::Flavors::make(
                              "lrz-eu", res::Backend::kBrokerService, 4, 16.0))
                    .value();
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  // Ask the advisor what it would do for this workload.
  core::PlacementFactors factors;
  factors.edge_site = "jetstream-us";
  factors.cloud_site = "lrz-eu";
  factors.message_bytes = 5000 * 32 * 8;
  factors.cloud_compute_ms = 20.0;  // k-means at 5,000 points
  factors.reduction_ratio = 1.0 / 8.0;
  factors.reduction_ms = 3.0;
  auto recommendation = core::recommend_placement(*fabric, factors);
  if (recommendation.ok()) {
    std::printf("%s\n", recommendation.value().to_string().c_str());
  }

  std::printf("measuring cloud-centric deployment...\n");
  auto cloud_centric =
      run_mode(fabric, edge, cloud, broker,
               core::DeploymentMode::kCloudCentric, "geo-cloud");
  std::printf("%s\n", cloud_centric.run.to_string().c_str());

  std::printf("measuring hybrid deployment (8x edge aggregation)...\n");
  auto hybrid = run_mode(fabric, edge, cloud, broker,
                         core::DeploymentMode::kHybrid, "geo-hybrid");
  std::printf("%s\n", hybrid.run.to_string().c_str());

  const auto links = fabric->link_stats();
  const auto wan = links.find("jetstream-us->lrz-eu");
  if (wan != links.end()) {
    std::printf("total WAN traffic: %.1f MB across %llu transfers\n",
                static_cast<double>(wan->second.bytes) / 1e6,
                static_cast<unsigned long long>(wan->second.transfers));
  }
  std::printf(
      "\nhybrid vs cloud-centric throughput: %.2fx (predicted winner: "
      "%s)\n",
      hybrid.run.mbytes_per_second > 0
          ? hybrid.run.messages_per_second /
                cloud_centric.run.messages_per_second
          : 0.0,
      recommendation.ok()
          ? core::to_string(recommendation.value().best)
          : "?");
  Clock::set_time_scale(1.0);
  return 0;
}
