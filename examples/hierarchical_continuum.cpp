// Hierarchical continuum: more than two layers (paper §V future work:
// "generalize the abstraction to arbitrary architectures and topologies
// of resources — currently, it is limited to two layers").
//
// Topology: 4 edge devices -> fog gateway (pre-aggregation, 8x) ->
// regional cloud (outlier scoring with k-means) -> central cloud
// (auto-encoder re-scoring of suspicious traffic). Each layer runs on its
// own pilot at its own site; each hop pays its own link. The run report
// shows per-stage input/output counts and processing costs, plus the full
// chain's end-to-end latency.
//
// Build & run:  ./build/examples/hierarchical_continuum
#include <cstdio>

#include "core/multistage.h"
#include "pilot_edge.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kWarn);

  // Four-site topology with progressively better links toward the core.
  auto fabric = std::make_shared<net::Fabric>();
  (void)fabric->add_site({.id = "devices", .kind = net::SiteKind::kEdge,
                          .region = "plant", .description = "sensor field"});
  (void)fabric->add_site({.id = "fog", .kind = net::SiteKind::kEdge,
                          .region = "plant", .description = "fog gateway"});
  (void)fabric->add_site({.id = "regional", .kind = net::SiteKind::kCloud,
                          .region = "eu-de", .description = "regional DC"});
  (void)fabric->add_site({.id = "core", .kind = net::SiteKind::kCloud,
                          .region = "eu-de", .description = "central cloud"});
  auto link = [&](const char* a, const char* b, double ms, double mbps) {
    net::LinkSpec spec;
    spec.from = a;
    spec.to = b;
    spec.latency_min = spec.latency_max =
        std::chrono::microseconds(static_cast<int>(ms * 1000));
    spec.bandwidth_min_bps = spec.bandwidth_max_bps = mbps * 1e6;
    (void)fabric->add_bidirectional_link(spec);
  };
  link("devices", "fog", 2, 100);       // local radio/ethernet
  link("fog", "regional", 10, 500);     // metro fiber
  link("regional", "core", 25, 1000);   // backbone
  link("devices", "regional", 12, 100);
  link("devices", "core", 40, 100);
  link("fog", "core", 30, 500);

  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, options);
  auto devices = pm.submit(res::Flavors::raspi("devices", 4)).value();
  auto fog = pm.submit(res::Flavors::make("fog", res::Backend::kEdgeSsh, 4,
                                          8.0))
                 .value();
  auto regional = pm.submit(res::Flavors::make(
                                "regional", res::Backend::kCloudVm, 6, 24.0))
                      .value();
  auto core = pm.submit(res::Flavors::lrz_large("core")).value();
  auto broker = pm.submit(res::Flavors::make(
                              "fog", res::Backend::kBrokerService, 4, 16.0))
                    .value();
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  core::MultiStageConfig config;
  config.edge_devices = 4;
  config.messages_per_device = 6;
  config.rows_per_message = 2000;
  config.run_timeout = std::chrono::minutes(5);

  core::MultiStagePipeline pipeline(config);
  pipeline.set_fabric(fabric)
      .set_pilot_broker(broker)
      .set_pilot_edge(devices)
      .set_produce_function(core::functions::make_generator_produce({}, 2000))
      .add_stage({.name = "fog-aggregate",
                  .pilot = fog,
                  .process = core::functions::make_aggregate_edge(8)})
      .add_stage({.name = "regional-kmeans",
                  .pilot = regional,
                  .process = core::functions::make_model_process(
                      ml::ModelKind::kKMeans)})
      .add_stage({.name = "core-autoencoder",
                  .pilot = core,
                  .process = core::functions::make_model_process(
                      ml::ModelKind::kAutoEncoder),
                  .tasks = 2});

  std::printf("running 4-device -> fog -> regional -> core chain...\n\n");
  auto report = pipeline.run();
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().to_string().c_str());
    return 1;
  }
  std::printf("%s\n", report.value().to_string().c_str());

  std::printf("link traffic (who paid for which hop):\n");
  for (const auto& [name, stats] : fabric->link_stats()) {
    if (stats.bytes == 0) continue;
    std::printf("  %-22s %8.2f MB over %llu transfers\n", name.c_str(),
                static_cast<double>(stats.bytes) / 1e6,
                static_cast<unsigned long long>(stats.transfers));
  }
  return 0;
}
