// Dynamism: runtime function replacement and processing scale-out.
//
// The paper (§II-D) highlights that "processing functions can be
// programmatically replaced at runtime (without the need to allocate a
// new pilot), allowing e.g. the exchange of low vs. high fidelity
// models", and that resources can be expanded when a bottleneck arises.
// This example does both while a pipeline is live:
//   phase 1 — start with a low-fidelity model (k-means, 5 clusters);
//   phase 2 — hot-swap to a high-fidelity model (k-means, 50 clusters)
//             after half the stream;
//   phase 3 — scale processing from 1 to 3 tasks mid-run and watch the
//             backlog drain faster.
//
// Build & run:  ./build/examples/dynamic_scaling
#include <cstdio>

#include "pilot_edge.h"

int main() {
  using namespace pe;
  Logger::set_level(LogLevel::kWarn);

  auto fabric = net::Fabric::make_single_site_topology();
  res::PilotManagerOptions options;
  options.startup_delay_factor = 0.001;
  res::PilotManager pm(fabric, options);
  auto edge = pm.submit(res::Flavors::make("lrz-eu", res::Backend::kCloudVm,
                                           2, 8.0))
                  .value();
  auto cloud = pm.submit(res::Flavors::lrz_large()).value();
  auto broker = pm.submit(res::Flavors::make(
                              "lrz-eu", res::Backend::kBrokerService, 2, 8.0))
                    .value();
  if (auto s = pm.wait_all_active(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }

  constexpr std::size_t kDevices = 2;
  constexpr std::size_t kMessages = 40;  // per device

  core::PipelineConfig config;
  config.edge_devices = kDevices;
  config.messages_per_device = kMessages;
  config.rows_per_message = 2000;
  config.processing_tasks = 1;  // intentionally under-provisioned
  config.produce_interval = std::chrono::milliseconds(10);
  config.topic = "dynamic";
  config.run_timeout = std::chrono::minutes(10);

  core::EdgeToCloudPipeline pipeline(config);
  ConfigMap low_fidelity;
  low_fidelity.set_int("kmeans.clusters", 5);
  pipeline.set_fabric(fabric)
      .set_pilot_edge(edge)
      .set_pilot_cloud_processing(cloud)
      .set_pilot_cloud_broker(broker)
      .set_produce_function(core::functions::make_generator_produce({}, 2000))
      .set_process_cloud_function(core::functions::make_model_process(
          ml::ModelKind::kKMeans, low_fidelity));

  if (auto s = pipeline.start(); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("phase 1: low-fidelity model (kmeans/5), 1 processing task\n");

  const std::uint64_t total = kDevices * kMessages;
  bool swapped = false, scaled = false;
  Stopwatch sw;
  std::uint64_t last = 0;
  double drain_before = 0.0, drain_after = 0.0;
  Stopwatch phase_clock;
  while (pipeline.messages_processed() < total) {
    Clock::sleep_exact(std::chrono::milliseconds(100));
    const auto processed = pipeline.messages_processed();
    std::printf("  t=%5.1fs processed %3llu/%llu (backlog %lld)\n",
                sw.elapsed_seconds(),
                static_cast<unsigned long long>(processed),
                static_cast<unsigned long long>(total),
                static_cast<long long>(pipeline.messages_produced()) -
                    static_cast<long long>(processed));

    if (!swapped && processed >= total / 2) {
      ConfigMap high_fidelity;
      high_fidelity.set_int("kmeans.clusters", 50);
      pipeline.replace_process_cloud_function(
          core::functions::make_model_process(ml::ModelKind::kKMeans,
                                              high_fidelity));
      std::printf("phase 2: hot-swapped to high-fidelity model (kmeans/50) "
                  "without a new pilot\n");
      swapped = true;
      drain_before = static_cast<double>(processed - last) /
                     phase_clock.elapsed_seconds();
      phase_clock.reset();
      last = processed;
    }
    if (swapped && !scaled && processed >= (total * 3) / 4) {
      if (auto s = pipeline.scale_processing(2); s.ok()) {
        std::printf("phase 3: scaled processing 1 -> 3 tasks at runtime\n");
      }
      scaled = true;
      drain_after = static_cast<double>(processed - last) /
                    phase_clock.elapsed_seconds();
      phase_clock.reset();
      last = processed;
    }
  }
  (void)pipeline.wait();
  pipeline.stop();

  const auto report = pipeline.report("dynamic-scaling");
  std::printf("\n%s\n", report.run.to_string().c_str());
  std::printf("processed %llu messages (%llu duplicates skipped), "
              "drain rates: %.1f -> %.1f msg/s across phases\n",
              static_cast<unsigned long long>(report.messages_processed),
              static_cast<unsigned long long>(report.duplicates_skipped),
              drain_before, drain_after);
  return 0;
}
