# Empty compiler generated dependencies file for bench_fig3_models.
# This may be replaced when dependencies are built.
