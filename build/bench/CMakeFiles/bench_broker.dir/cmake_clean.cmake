file(REMOVE_RECURSE
  "CMakeFiles/bench_broker.dir/bench_broker.cpp.o"
  "CMakeFiles/bench_broker.dir/bench_broker.cpp.o.d"
  "bench_broker"
  "bench_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
