# Empty dependencies file for bench_broker.
# This may be replaced when dependencies are built.
