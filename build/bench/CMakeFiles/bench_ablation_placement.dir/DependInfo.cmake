
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_placement.cpp" "bench/CMakeFiles/bench_ablation_placement.dir/bench_ablation_placement.cpp.o" "gcc" "bench/CMakeFiles/bench_ablation_placement.dir/bench_ablation_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pe_core.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/pe_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/taskexec/CMakeFiles/pe_taskexec.dir/DependInfo.cmake"
  "/root/repo/build/src/paramserver/CMakeFiles/pe_paramserver.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/pe_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/pe_mqtt.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/pe_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pe_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
