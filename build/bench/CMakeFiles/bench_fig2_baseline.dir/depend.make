# Empty dependencies file for bench_fig2_baseline.
# This may be replaced when dependencies are built.
