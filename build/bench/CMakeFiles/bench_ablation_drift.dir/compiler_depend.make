# Empty compiler generated dependencies file for bench_ablation_drift.
# This may be replaced when dependencies are built.
