# Empty dependencies file for bench_pilot_startup.
# This may be replaced when dependencies are built.
