file(REMOVE_RECURSE
  "CMakeFiles/bench_pilot_startup.dir/bench_pilot_startup.cpp.o"
  "CMakeFiles/bench_pilot_startup.dir/bench_pilot_startup.cpp.o.d"
  "bench_pilot_startup"
  "bench_pilot_startup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pilot_startup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
