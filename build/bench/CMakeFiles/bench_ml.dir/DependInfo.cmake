
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ml.cpp" "bench/CMakeFiles/bench_ml.dir/bench_ml.cpp.o" "gcc" "bench/CMakeFiles/bench_ml.dir/bench_ml.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/pe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
