file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_geo.dir/bench_fig3_geo.cpp.o"
  "CMakeFiles/bench_fig3_geo.dir/bench_fig3_geo.cpp.o.d"
  "bench_fig3_geo"
  "bench_fig3_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
