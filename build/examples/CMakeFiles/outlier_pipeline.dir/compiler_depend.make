# Empty compiler generated dependencies file for outlier_pipeline.
# This may be replaced when dependencies are built.
