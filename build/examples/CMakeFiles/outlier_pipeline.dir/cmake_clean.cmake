file(REMOVE_RECURSE
  "CMakeFiles/outlier_pipeline.dir/outlier_pipeline.cpp.o"
  "CMakeFiles/outlier_pipeline.dir/outlier_pipeline.cpp.o.d"
  "outlier_pipeline"
  "outlier_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/outlier_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
