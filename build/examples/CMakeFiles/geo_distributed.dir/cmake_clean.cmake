file(REMOVE_RECURSE
  "CMakeFiles/geo_distributed.dir/geo_distributed.cpp.o"
  "CMakeFiles/geo_distributed.dir/geo_distributed.cpp.o.d"
  "geo_distributed"
  "geo_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geo_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
