# Empty dependencies file for dynamic_scaling.
# This may be replaced when dependencies are built.
