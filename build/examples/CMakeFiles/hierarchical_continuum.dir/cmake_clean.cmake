file(REMOVE_RECURSE
  "CMakeFiles/hierarchical_continuum.dir/hierarchical_continuum.cpp.o"
  "CMakeFiles/hierarchical_continuum.dir/hierarchical_continuum.cpp.o.d"
  "hierarchical_continuum"
  "hierarchical_continuum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hierarchical_continuum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
