# Empty dependencies file for hierarchical_continuum.
# This may be replaced when dependencies are built.
