file(REMOVE_RECURSE
  "CMakeFiles/mqtt_ingestion.dir/mqtt_ingestion.cpp.o"
  "CMakeFiles/mqtt_ingestion.dir/mqtt_ingestion.cpp.o.d"
  "mqtt_ingestion"
  "mqtt_ingestion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqtt_ingestion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
