# Empty compiler generated dependencies file for mqtt_ingestion.
# This may be replaced when dependencies are built.
