file(REMOVE_RECURSE
  "CMakeFiles/pilot_edge_run.dir/pilot_edge_run.cpp.o"
  "CMakeFiles/pilot_edge_run.dir/pilot_edge_run.cpp.o.d"
  "pilot_edge_run"
  "pilot_edge_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pilot_edge_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
