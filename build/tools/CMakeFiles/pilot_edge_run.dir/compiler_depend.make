# Empty compiler generated dependencies file for pilot_edge_run.
# This may be replaced when dependencies are built.
