file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/experiment_cli_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/experiment_cli_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/functions_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/functions_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/multistage_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/multistage_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_mqtt_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_mqtt_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/pipeline_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/placement_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/placement_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/results_window_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/results_window_test.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/scaling_test.cpp.o"
  "CMakeFiles/core_tests.dir/core/scaling_test.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
