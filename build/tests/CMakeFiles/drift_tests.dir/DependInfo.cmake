
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/data/drift_test.cpp" "tests/CMakeFiles/drift_tests.dir/data/drift_test.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/data/drift_test.cpp.o.d"
  "/root/repo/tests/data/seasonal_test.cpp" "tests/CMakeFiles/drift_tests.dir/data/seasonal_test.cpp.o" "gcc" "tests/CMakeFiles/drift_tests.dir/data/seasonal_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/pe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
