file(REMOVE_RECURSE
  "CMakeFiles/drift_tests.dir/data/drift_test.cpp.o"
  "CMakeFiles/drift_tests.dir/data/drift_test.cpp.o.d"
  "CMakeFiles/drift_tests.dir/data/seasonal_test.cpp.o"
  "CMakeFiles/drift_tests.dir/data/seasonal_test.cpp.o.d"
  "drift_tests"
  "drift_tests.pdb"
  "drift_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drift_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
