# Empty dependencies file for retry_tests.
# This may be replaced when dependencies are built.
