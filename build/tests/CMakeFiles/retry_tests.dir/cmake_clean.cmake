file(REMOVE_RECURSE
  "CMakeFiles/retry_tests.dir/taskexec/retry_test.cpp.o"
  "CMakeFiles/retry_tests.dir/taskexec/retry_test.cpp.o.d"
  "retry_tests"
  "retry_tests.pdb"
  "retry_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/retry_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
