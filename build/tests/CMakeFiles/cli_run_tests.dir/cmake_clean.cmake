file(REMOVE_RECURSE
  "CMakeFiles/cli_run_tests.dir/integration/cli_run_test.cpp.o"
  "CMakeFiles/cli_run_tests.dir/integration/cli_run_test.cpp.o.d"
  "cli_run_tests"
  "cli_run_tests.pdb"
  "cli_run_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cli_run_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
