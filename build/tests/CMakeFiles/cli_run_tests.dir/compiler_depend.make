# Empty compiler generated dependencies file for cli_run_tests.
# This may be replaced when dependencies are built.
