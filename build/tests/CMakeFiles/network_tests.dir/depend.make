# Empty dependencies file for network_tests.
# This may be replaced when dependencies are built.
