file(REMOVE_RECURSE
  "CMakeFiles/network_tests.dir/network/fabric_test.cpp.o"
  "CMakeFiles/network_tests.dir/network/fabric_test.cpp.o.d"
  "CMakeFiles/network_tests.dir/network/link_test.cpp.o"
  "CMakeFiles/network_tests.dir/network/link_test.cpp.o.d"
  "network_tests"
  "network_tests.pdb"
  "network_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
