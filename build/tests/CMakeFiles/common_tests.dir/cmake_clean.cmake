file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/clock_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/clock_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/config_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/config_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/histogram_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/histogram_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/queue_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/queue_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/rng_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/rng_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/serialize_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/serialize_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/status_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/status_test.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cpp.o"
  "CMakeFiles/common_tests.dir/common/thread_pool_test.cpp.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
