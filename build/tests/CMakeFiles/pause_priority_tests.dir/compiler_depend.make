# Empty compiler generated dependencies file for pause_priority_tests.
# This may be replaced when dependencies are built.
