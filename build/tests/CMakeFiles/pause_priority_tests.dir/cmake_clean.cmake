file(REMOVE_RECURSE
  "CMakeFiles/pause_priority_tests.dir/broker/pause_priority_test.cpp.o"
  "CMakeFiles/pause_priority_tests.dir/broker/pause_priority_test.cpp.o.d"
  "pause_priority_tests"
  "pause_priority_tests.pdb"
  "pause_priority_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pause_priority_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
