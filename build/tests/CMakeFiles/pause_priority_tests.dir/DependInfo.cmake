
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/broker/pause_priority_test.cpp" "tests/CMakeFiles/pause_priority_tests.dir/broker/pause_priority_test.cpp.o" "gcc" "tests/CMakeFiles/pause_priority_tests.dir/broker/pause_priority_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/broker/CMakeFiles/pe_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/taskexec/CMakeFiles/pe_taskexec.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pe_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
