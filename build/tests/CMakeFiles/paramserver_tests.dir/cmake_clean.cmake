file(REMOVE_RECURSE
  "CMakeFiles/paramserver_tests.dir/paramserver/server_test.cpp.o"
  "CMakeFiles/paramserver_tests.dir/paramserver/server_test.cpp.o.d"
  "paramserver_tests"
  "paramserver_tests.pdb"
  "paramserver_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paramserver_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
