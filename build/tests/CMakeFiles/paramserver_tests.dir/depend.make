# Empty dependencies file for paramserver_tests.
# This may be replaced when dependencies are built.
