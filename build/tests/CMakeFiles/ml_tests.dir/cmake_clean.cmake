file(REMOVE_RECURSE
  "CMakeFiles/ml_tests.dir/ml/autoencoder_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/autoencoder_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/federated_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/federated_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/isolation_forest_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/isolation_forest_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/kmeans_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/kmeans_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/outlier_factory_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/outlier_factory_test.cpp.o.d"
  "CMakeFiles/ml_tests.dir/ml/scaler_matrix_test.cpp.o"
  "CMakeFiles/ml_tests.dir/ml/scaler_matrix_test.cpp.o.d"
  "ml_tests"
  "ml_tests.pdb"
  "ml_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
