
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml/autoencoder_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/autoencoder_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/autoencoder_test.cpp.o.d"
  "/root/repo/tests/ml/federated_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/federated_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/federated_test.cpp.o.d"
  "/root/repo/tests/ml/isolation_forest_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/isolation_forest_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/isolation_forest_test.cpp.o.d"
  "/root/repo/tests/ml/kmeans_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/kmeans_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/kmeans_test.cpp.o.d"
  "/root/repo/tests/ml/outlier_factory_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/outlier_factory_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/outlier_factory_test.cpp.o.d"
  "/root/repo/tests/ml/scaler_matrix_test.cpp" "tests/CMakeFiles/ml_tests.dir/ml/scaler_matrix_test.cpp.o" "gcc" "tests/CMakeFiles/ml_tests.dir/ml/scaler_matrix_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ml/CMakeFiles/pe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
