
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/taskexec/cluster_test.cpp" "tests/CMakeFiles/taskexec_tests.dir/taskexec/cluster_test.cpp.o" "gcc" "tests/CMakeFiles/taskexec_tests.dir/taskexec/cluster_test.cpp.o.d"
  "/root/repo/tests/taskexec/scheduler_test.cpp" "tests/CMakeFiles/taskexec_tests.dir/taskexec/scheduler_test.cpp.o" "gcc" "tests/CMakeFiles/taskexec_tests.dir/taskexec/scheduler_test.cpp.o.d"
  "/root/repo/tests/taskexec/worker_test.cpp" "tests/CMakeFiles/taskexec_tests.dir/taskexec/worker_test.cpp.o" "gcc" "tests/CMakeFiles/taskexec_tests.dir/taskexec/worker_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/taskexec/CMakeFiles/pe_taskexec.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pe_network.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
