# Empty dependencies file for taskexec_tests.
# This may be replaced when dependencies are built.
