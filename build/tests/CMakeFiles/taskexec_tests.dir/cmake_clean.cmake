file(REMOVE_RECURSE
  "CMakeFiles/taskexec_tests.dir/taskexec/cluster_test.cpp.o"
  "CMakeFiles/taskexec_tests.dir/taskexec/cluster_test.cpp.o.d"
  "CMakeFiles/taskexec_tests.dir/taskexec/scheduler_test.cpp.o"
  "CMakeFiles/taskexec_tests.dir/taskexec/scheduler_test.cpp.o.d"
  "CMakeFiles/taskexec_tests.dir/taskexec/worker_test.cpp.o"
  "CMakeFiles/taskexec_tests.dir/taskexec/worker_test.cpp.o.d"
  "taskexec_tests"
  "taskexec_tests.pdb"
  "taskexec_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskexec_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
