# Empty compiler generated dependencies file for mqtt_tests.
# This may be replaced when dependencies are built.
