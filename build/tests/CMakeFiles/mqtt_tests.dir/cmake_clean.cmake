file(REMOVE_RECURSE
  "CMakeFiles/mqtt_tests.dir/mqtt/mqtt_bridge_test.cpp.o"
  "CMakeFiles/mqtt_tests.dir/mqtt/mqtt_bridge_test.cpp.o.d"
  "CMakeFiles/mqtt_tests.dir/mqtt/mqtt_broker_test.cpp.o"
  "CMakeFiles/mqtt_tests.dir/mqtt/mqtt_broker_test.cpp.o.d"
  "mqtt_tests"
  "mqtt_tests.pdb"
  "mqtt_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqtt_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
