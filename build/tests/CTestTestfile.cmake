# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/network_tests[1]_include.cmake")
include("/root/repo/build/tests/broker_tests[1]_include.cmake")
include("/root/repo/build/tests/pause_priority_tests[1]_include.cmake")
include("/root/repo/build/tests/taskexec_tests[1]_include.cmake")
include("/root/repo/build/tests/retry_tests[1]_include.cmake")
include("/root/repo/build/tests/resource_tests[1]_include.cmake")
include("/root/repo/build/tests/paramserver_tests[1]_include.cmake")
include("/root/repo/build/tests/data_tests[1]_include.cmake")
include("/root/repo/build/tests/drift_tests[1]_include.cmake")
include("/root/repo/build/tests/ml_tests[1]_include.cmake")
include("/root/repo/build/tests/telemetry_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/integration_tests[1]_include.cmake")
include("/root/repo/build/tests/property_tests[1]_include.cmake")
include("/root/repo/build/tests/cli_run_tests[1]_include.cmake")
include("/root/repo/build/tests/mqtt_tests[1]_include.cmake")
