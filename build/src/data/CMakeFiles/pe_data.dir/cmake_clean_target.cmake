file(REMOVE_RECURSE
  "libpe_data.a"
)
