# Empty dependencies file for pe_data.
# This may be replaced when dependencies are built.
