file(REMOVE_RECURSE
  "CMakeFiles/pe_data.dir/codec.cpp.o"
  "CMakeFiles/pe_data.dir/codec.cpp.o.d"
  "CMakeFiles/pe_data.dir/generator.cpp.o"
  "CMakeFiles/pe_data.dir/generator.cpp.o.d"
  "CMakeFiles/pe_data.dir/seasonal.cpp.o"
  "CMakeFiles/pe_data.dir/seasonal.cpp.o.d"
  "libpe_data.a"
  "libpe_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
