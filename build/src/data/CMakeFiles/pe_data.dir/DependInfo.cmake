
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/codec.cpp" "src/data/CMakeFiles/pe_data.dir/codec.cpp.o" "gcc" "src/data/CMakeFiles/pe_data.dir/codec.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/pe_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/pe_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/seasonal.cpp" "src/data/CMakeFiles/pe_data.dir/seasonal.cpp.o" "gcc" "src/data/CMakeFiles/pe_data.dir/seasonal.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
