
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/autoencoder.cpp" "src/ml/CMakeFiles/pe_ml.dir/autoencoder.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/autoencoder.cpp.o.d"
  "/root/repo/src/ml/factory.cpp" "src/ml/CMakeFiles/pe_ml.dir/factory.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/factory.cpp.o.d"
  "/root/repo/src/ml/federated.cpp" "src/ml/CMakeFiles/pe_ml.dir/federated.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/federated.cpp.o.d"
  "/root/repo/src/ml/isolation_forest.cpp" "src/ml/CMakeFiles/pe_ml.dir/isolation_forest.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/isolation_forest.cpp.o.d"
  "/root/repo/src/ml/kmeans.cpp" "src/ml/CMakeFiles/pe_ml.dir/kmeans.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/kmeans.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/pe_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/scaler.cpp" "src/ml/CMakeFiles/pe_ml.dir/scaler.cpp.o" "gcc" "src/ml/CMakeFiles/pe_ml.dir/scaler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pe_data.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
