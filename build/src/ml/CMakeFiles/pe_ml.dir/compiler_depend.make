# Empty compiler generated dependencies file for pe_ml.
# This may be replaced when dependencies are built.
