file(REMOVE_RECURSE
  "libpe_ml.a"
)
