file(REMOVE_RECURSE
  "CMakeFiles/pe_ml.dir/autoencoder.cpp.o"
  "CMakeFiles/pe_ml.dir/autoencoder.cpp.o.d"
  "CMakeFiles/pe_ml.dir/factory.cpp.o"
  "CMakeFiles/pe_ml.dir/factory.cpp.o.d"
  "CMakeFiles/pe_ml.dir/federated.cpp.o"
  "CMakeFiles/pe_ml.dir/federated.cpp.o.d"
  "CMakeFiles/pe_ml.dir/isolation_forest.cpp.o"
  "CMakeFiles/pe_ml.dir/isolation_forest.cpp.o.d"
  "CMakeFiles/pe_ml.dir/kmeans.cpp.o"
  "CMakeFiles/pe_ml.dir/kmeans.cpp.o.d"
  "CMakeFiles/pe_ml.dir/matrix.cpp.o"
  "CMakeFiles/pe_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/pe_ml.dir/scaler.cpp.o"
  "CMakeFiles/pe_ml.dir/scaler.cpp.o.d"
  "libpe_ml.a"
  "libpe_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
