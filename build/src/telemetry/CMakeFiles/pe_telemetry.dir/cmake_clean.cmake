file(REMOVE_RECURSE
  "CMakeFiles/pe_telemetry.dir/collector.cpp.o"
  "CMakeFiles/pe_telemetry.dir/collector.cpp.o.d"
  "CMakeFiles/pe_telemetry.dir/energy.cpp.o"
  "CMakeFiles/pe_telemetry.dir/energy.cpp.o.d"
  "CMakeFiles/pe_telemetry.dir/json.cpp.o"
  "CMakeFiles/pe_telemetry.dir/json.cpp.o.d"
  "CMakeFiles/pe_telemetry.dir/metrics.cpp.o"
  "CMakeFiles/pe_telemetry.dir/metrics.cpp.o.d"
  "CMakeFiles/pe_telemetry.dir/report.cpp.o"
  "CMakeFiles/pe_telemetry.dir/report.cpp.o.d"
  "libpe_telemetry.a"
  "libpe_telemetry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_telemetry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
