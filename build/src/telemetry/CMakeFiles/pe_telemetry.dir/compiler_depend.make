# Empty compiler generated dependencies file for pe_telemetry.
# This may be replaced when dependencies are built.
