file(REMOVE_RECURSE
  "libpe_telemetry.a"
)
