file(REMOVE_RECURSE
  "CMakeFiles/pe_broker.dir/broker.cpp.o"
  "CMakeFiles/pe_broker.dir/broker.cpp.o.d"
  "CMakeFiles/pe_broker.dir/consumer.cpp.o"
  "CMakeFiles/pe_broker.dir/consumer.cpp.o.d"
  "CMakeFiles/pe_broker.dir/group_coordinator.cpp.o"
  "CMakeFiles/pe_broker.dir/group_coordinator.cpp.o.d"
  "CMakeFiles/pe_broker.dir/partition_log.cpp.o"
  "CMakeFiles/pe_broker.dir/partition_log.cpp.o.d"
  "CMakeFiles/pe_broker.dir/producer.cpp.o"
  "CMakeFiles/pe_broker.dir/producer.cpp.o.d"
  "CMakeFiles/pe_broker.dir/topic.cpp.o"
  "CMakeFiles/pe_broker.dir/topic.cpp.o.d"
  "libpe_broker.a"
  "libpe_broker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_broker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
