# Empty dependencies file for pe_broker.
# This may be replaced when dependencies are built.
