file(REMOVE_RECURSE
  "libpe_broker.a"
)
