file(REMOVE_RECURSE
  "CMakeFiles/pe_paramserver.dir/server.cpp.o"
  "CMakeFiles/pe_paramserver.dir/server.cpp.o.d"
  "libpe_paramserver.a"
  "libpe_paramserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_paramserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
