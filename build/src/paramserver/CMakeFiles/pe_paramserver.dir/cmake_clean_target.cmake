file(REMOVE_RECURSE
  "libpe_paramserver.a"
)
