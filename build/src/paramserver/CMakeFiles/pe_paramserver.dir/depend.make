# Empty dependencies file for pe_paramserver.
# This may be replaced when dependencies are built.
