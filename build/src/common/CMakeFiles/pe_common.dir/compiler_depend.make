# Empty compiler generated dependencies file for pe_common.
# This may be replaced when dependencies are built.
