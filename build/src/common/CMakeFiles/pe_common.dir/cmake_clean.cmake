file(REMOVE_RECURSE
  "CMakeFiles/pe_common.dir/histogram.cpp.o"
  "CMakeFiles/pe_common.dir/histogram.cpp.o.d"
  "CMakeFiles/pe_common.dir/logging.cpp.o"
  "CMakeFiles/pe_common.dir/logging.cpp.o.d"
  "CMakeFiles/pe_common.dir/thread_pool.cpp.o"
  "CMakeFiles/pe_common.dir/thread_pool.cpp.o.d"
  "libpe_common.a"
  "libpe_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
