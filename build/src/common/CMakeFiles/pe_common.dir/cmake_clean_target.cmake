file(REMOVE_RECURSE
  "libpe_common.a"
)
