file(REMOVE_RECURSE
  "libpe_network.a"
)
