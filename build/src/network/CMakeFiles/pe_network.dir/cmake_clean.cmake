file(REMOVE_RECURSE
  "CMakeFiles/pe_network.dir/fabric.cpp.o"
  "CMakeFiles/pe_network.dir/fabric.cpp.o.d"
  "CMakeFiles/pe_network.dir/link.cpp.o"
  "CMakeFiles/pe_network.dir/link.cpp.o.d"
  "libpe_network.a"
  "libpe_network.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_network.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
