# Empty dependencies file for pe_network.
# This may be replaced when dependencies are built.
