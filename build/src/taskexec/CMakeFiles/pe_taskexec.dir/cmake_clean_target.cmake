file(REMOVE_RECURSE
  "libpe_taskexec.a"
)
