
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskexec/cluster.cpp" "src/taskexec/CMakeFiles/pe_taskexec.dir/cluster.cpp.o" "gcc" "src/taskexec/CMakeFiles/pe_taskexec.dir/cluster.cpp.o.d"
  "/root/repo/src/taskexec/scheduler.cpp" "src/taskexec/CMakeFiles/pe_taskexec.dir/scheduler.cpp.o" "gcc" "src/taskexec/CMakeFiles/pe_taskexec.dir/scheduler.cpp.o.d"
  "/root/repo/src/taskexec/worker.cpp" "src/taskexec/CMakeFiles/pe_taskexec.dir/worker.cpp.o" "gcc" "src/taskexec/CMakeFiles/pe_taskexec.dir/worker.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pe_network.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
