# Empty compiler generated dependencies file for pe_taskexec.
# This may be replaced when dependencies are built.
