file(REMOVE_RECURSE
  "CMakeFiles/pe_taskexec.dir/cluster.cpp.o"
  "CMakeFiles/pe_taskexec.dir/cluster.cpp.o.d"
  "CMakeFiles/pe_taskexec.dir/scheduler.cpp.o"
  "CMakeFiles/pe_taskexec.dir/scheduler.cpp.o.d"
  "CMakeFiles/pe_taskexec.dir/worker.cpp.o"
  "CMakeFiles/pe_taskexec.dir/worker.cpp.o.d"
  "libpe_taskexec.a"
  "libpe_taskexec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_taskexec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
