file(REMOVE_RECURSE
  "CMakeFiles/pe_core.dir/experiment_cli.cpp.o"
  "CMakeFiles/pe_core.dir/experiment_cli.cpp.o.d"
  "CMakeFiles/pe_core.dir/functions.cpp.o"
  "CMakeFiles/pe_core.dir/functions.cpp.o.d"
  "CMakeFiles/pe_core.dir/multistage.cpp.o"
  "CMakeFiles/pe_core.dir/multistage.cpp.o.d"
  "CMakeFiles/pe_core.dir/pipeline.cpp.o"
  "CMakeFiles/pe_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/pe_core.dir/placement.cpp.o"
  "CMakeFiles/pe_core.dir/placement.cpp.o.d"
  "CMakeFiles/pe_core.dir/scaling.cpp.o"
  "CMakeFiles/pe_core.dir/scaling.cpp.o.d"
  "libpe_core.a"
  "libpe_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
