
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/experiment_cli.cpp" "src/core/CMakeFiles/pe_core.dir/experiment_cli.cpp.o" "gcc" "src/core/CMakeFiles/pe_core.dir/experiment_cli.cpp.o.d"
  "/root/repo/src/core/functions.cpp" "src/core/CMakeFiles/pe_core.dir/functions.cpp.o" "gcc" "src/core/CMakeFiles/pe_core.dir/functions.cpp.o.d"
  "/root/repo/src/core/multistage.cpp" "src/core/CMakeFiles/pe_core.dir/multistage.cpp.o" "gcc" "src/core/CMakeFiles/pe_core.dir/multistage.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/pe_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/pe_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/placement.cpp" "src/core/CMakeFiles/pe_core.dir/placement.cpp.o" "gcc" "src/core/CMakeFiles/pe_core.dir/placement.cpp.o.d"
  "/root/repo/src/core/scaling.cpp" "src/core/CMakeFiles/pe_core.dir/scaling.cpp.o" "gcc" "src/core/CMakeFiles/pe_core.dir/scaling.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pe_common.dir/DependInfo.cmake"
  "/root/repo/build/src/network/CMakeFiles/pe_network.dir/DependInfo.cmake"
  "/root/repo/build/src/broker/CMakeFiles/pe_broker.dir/DependInfo.cmake"
  "/root/repo/build/src/taskexec/CMakeFiles/pe_taskexec.dir/DependInfo.cmake"
  "/root/repo/build/src/resource/CMakeFiles/pe_resource.dir/DependInfo.cmake"
  "/root/repo/build/src/paramserver/CMakeFiles/pe_paramserver.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/pe_data.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/pe_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/telemetry/CMakeFiles/pe_telemetry.dir/DependInfo.cmake"
  "/root/repo/build/src/mqtt/CMakeFiles/pe_mqtt.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
