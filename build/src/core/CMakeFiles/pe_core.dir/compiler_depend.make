# Empty compiler generated dependencies file for pe_core.
# This may be replaced when dependencies are built.
