file(REMOVE_RECURSE
  "libpe_mqtt.a"
)
