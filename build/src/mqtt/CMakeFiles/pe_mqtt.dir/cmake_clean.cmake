file(REMOVE_RECURSE
  "CMakeFiles/pe_mqtt.dir/mqtt_bridge.cpp.o"
  "CMakeFiles/pe_mqtt.dir/mqtt_bridge.cpp.o.d"
  "CMakeFiles/pe_mqtt.dir/mqtt_broker.cpp.o"
  "CMakeFiles/pe_mqtt.dir/mqtt_broker.cpp.o.d"
  "libpe_mqtt.a"
  "libpe_mqtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_mqtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
