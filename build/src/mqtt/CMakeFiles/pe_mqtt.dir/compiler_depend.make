# Empty compiler generated dependencies file for pe_mqtt.
# This may be replaced when dependencies are built.
