file(REMOVE_RECURSE
  "libpe_resource.a"
)
