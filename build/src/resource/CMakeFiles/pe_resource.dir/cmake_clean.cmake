file(REMOVE_RECURSE
  "CMakeFiles/pe_resource.dir/backends.cpp.o"
  "CMakeFiles/pe_resource.dir/backends.cpp.o.d"
  "CMakeFiles/pe_resource.dir/pilot.cpp.o"
  "CMakeFiles/pe_resource.dir/pilot.cpp.o.d"
  "CMakeFiles/pe_resource.dir/pilot_manager.cpp.o"
  "CMakeFiles/pe_resource.dir/pilot_manager.cpp.o.d"
  "libpe_resource.a"
  "libpe_resource.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pe_resource.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
