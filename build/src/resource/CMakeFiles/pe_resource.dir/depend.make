# Empty dependencies file for pe_resource.
# This may be replaced when dependencies are built.
