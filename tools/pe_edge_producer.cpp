// pe_edge_producer: edge-side producer process.
//
// Registers a named channel with pe_brokerd over the control socket,
// then streams sequenced records through a shared-memory ring — the
// broker never sees a payload byte. Each record is:
//
//   u64 sequence (LE) | filler bytes (seq & 0xFF) to --payload-bytes
//
// so the consuming worker can assert a dense, uncorrupted prefix. The
// ring's producer heartbeat is stamped on every push; a mid-run SIGKILL
// of this process is the transport smoke test's fault — the broker's GC
// must then collect the ring and the worker must still drain every
// record that push() had completed.
//
// Usage: pe_edge_producer --port N --channel NAME [--topic T]
//        [--records N] [--payload-bytes B] [--ring-bytes B] [--pace-us U]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "transport/control_client.h"
#include "transport/shm_ring.h"

namespace {

std::uint64_t arg_u64(int argc, char** argv, const char* flag,
                      std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

std::string arg_str(int argc, char** argv, const char* flag,
                    std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "producer: %s\n", what.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pe;

  const auto port = static_cast<std::uint16_t>(arg_u64(argc, argv, "--port", 0));
  const std::string channel = arg_str(argc, argv, "--channel", "sensors");
  const std::string topic = arg_str(argc, argv, "--topic", "telemetry");
  const std::uint64_t records = arg_u64(argc, argv, "--records", 1'000'000);
  const std::uint64_t payload_bytes =
      arg_u64(argc, argv, "--payload-bytes", 32);
  const std::uint64_t ring_bytes =
      arg_u64(argc, argv, "--ring-bytes", 4ull << 20);
  const std::uint64_t pace_us = arg_u64(argc, argv, "--pace-us", 0);
  if (port == 0) die("--port is required");

  auto client = transport::ControlClient::connect(port);
  if (!client.ok()) die(client.status().to_string());

  const std::string shm_name =
      "/pe_ring_" + channel + "_" + std::to_string(::getpid());
  auto ring = transport::ShmRing::create(shm_name, ring_bytes);
  if (!ring.ok()) die(ring.status().to_string());

  if (auto s = client.value().register_ring(channel, shm_name,
                                            ring.value()->capacity(), topic,
                                            /*partition=*/0);
      !s.ok()) {
    die("register_ring: " + s.to_string());
  }
  std::printf("PRODUCER ready channel=%s shm=%s pid=%d\n", channel.c_str(),
              shm_name.c_str(), static_cast<int>(::getpid()));
  std::fflush(stdout);

  Bytes payload(payload_bytes < 8 ? 8 : payload_bytes);
  auto last_control_hb = Clock::now();
  std::uint64_t pushed = 0;
  for (std::uint64_t seq = 0; seq < records; ++seq) {
    std::memcpy(payload.data(), &seq, sizeof(seq));
    std::memset(payload.data() + 8, static_cast<int>(seq & 0xFF),
                payload.size() - 8);
    // Full ring = backpressure, not loss: retry until the worker drains.
    while (true) {
      auto s = ring.value()->push(payload, std::chrono::milliseconds(100));
      ring.value()->heartbeat();
      if (s.ok()) break;
      if (!s.is_transient()) die("push: " + s.to_string());
    }
    pushed += 1;
    if (pace_us > 0) Clock::sleep_exact(std::chrono::microseconds(pace_us));
    if (Clock::now() - last_control_hb > std::chrono::milliseconds(100)) {
      (void)client.value().heartbeat(channel);
      last_control_hb = Clock::now();
    }
  }

  ring.value()->close_producer();
  (void)client.value().unregister(channel);
  const auto& stats = ring.value()->stats();
  std::printf("PRODUCER done pushed=%llu bytes=%llu full_waits=%llu "
              "wraps=%llu\n",
              static_cast<unsigned long long>(pushed),
              static_cast<unsigned long long>(stats.bytes_pushed),
              static_cast<unsigned long long>(stats.full_waits),
              static_cast<unsigned long long>(stats.wraps));
  return 0;
}
