#!/usr/bin/env bash
# Builds the tree under ThreadSanitizer and runs the tier-1 test suite.
#
# Usage: tools/check.sh [thread|address] [ctest-regex]
#   tools/check.sh                 # TSan, all tests
#   tools/check.sh thread Chaos    # TSan, tests matching 'Chaos'
#   tools/check.sh address         # ASan, all tests
set -euo pipefail

SANITIZER="${1:-thread}"
FILTER="${2:-}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
BUILD_DIR="${ROOT}/build-${SANITIZER}san"

cmake -B "${BUILD_DIR}" -S "${ROOT}" -DPE_SANITIZE="${SANITIZER}" \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "${BUILD_DIR}" -j"$(nproc)"

cd "${BUILD_DIR}"
if [[ -n "${FILTER}" ]]; then
  ctest --output-on-failure -j"$(nproc)" -R "${FILTER}"
else
  ctest --output-on-failure -j"$(nproc)"
fi
