#!/usr/bin/env bash
# Local verification matrix: sanitizer runs, clang thread-safety
# analysis, and clang-tidy.
#
# Usage: tools/check.sh [mode] [ctest-regex]
#   tools/check.sh                       # TSan, all tests
#   tools/check.sh thread Chaos          # TSan, tests matching 'Chaos'
#   tools/check.sh address               # ASan, all tests
#   tools/check.sh undefined             # UBSan, all tests
#   tools/check.sh thread-safety         # clang -Wthread-safety, build only
#   tools/check.sh tidy [path-regex]     # clang-tidy over src/
#   tools/check.sh storage-torture [rounds]  # crash/recover kill-loop
#   tools/check.sh cluster-torture [rounds]  # leader-kill failover loop
#   tools/check.sh fleet-smoke [devices]     # 100k-device fleet, capped broker
#   tools/check.sh quota-storm [devices]     # fleet under a tight quota
#   tools/check.sh transport-smoke [records] # 3-process shm pipeline + kill -9
set -euo pipefail

MODE="${1:-thread}"
FILTER="${2:-}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"

require() {
  if ! command -v "$1" >/dev/null 2>&1; then
    echo "error: '$1' not found on PATH — mode '${MODE}' needs it" \
         "(apt-get install $2)" >&2
    exit 2
  fi
}

case "${MODE}" in
  thread|address|undefined)
    BUILD_DIR="${ROOT}/build-${MODE}san"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DPE_SANITIZE="${MODE}" \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)"
    cd "${BUILD_DIR}"
    if [[ -n "${FILTER}" ]]; then
      ctest --output-on-failure -j"$(nproc)" -R "${FILTER}"
    else
      ctest --output-on-failure -j"$(nproc)"
    fi
    ;;

  thread-safety)
    # Clang-only: builds the whole tree with -Wthread-safety promoted to
    # errors against the annotations in common/mutex.h.
    require clang++ clang
    BUILD_DIR="${ROOT}/build-tsa"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DPE_THREAD_SAFETY=ON \
      -DCMAKE_CXX_COMPILER=clang++ -DCMAKE_C_COMPILER=clang \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)"
    echo "thread-safety analysis clean"
    ;;

  tidy)
    require clang-tidy clang-tidy
    BUILD_DIR="${ROOT}/build-tidy"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" \
      -DCMAKE_EXPORT_COMPILE_COMMANDS=ON \
      -DCMAKE_BUILD_TYPE=RelWithDebInfo
    mapfile -t FILES < <(find "${ROOT}/src" -name '*.cpp' | sort)
    if [[ -n "${FILTER}" ]]; then
      mapfile -t FILES < <(printf '%s\n' "${FILES[@]}" | grep -E "${FILTER}")
    fi
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -p "${BUILD_DIR}" -quiet "${FILES[@]}"
    else
      clang-tidy -p "${BUILD_DIR}" --quiet "${FILES[@]}"
    fi
    ;;

  storage-torture)
    # Kill-loop over the storage engine: random appends/fsyncs, a power
    # cut at a random point (possibly mid-frame), recover, verify the
    # durability contract, repeat. FILTER is the round count.
    ROUNDS="${FILTER:-50}"
    BUILD_DIR="${ROOT}/build"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)" --target storage_torture
    for SEED in 1 2 3; do
      "${BUILD_DIR}/tools/storage_torture" "${ROUNDS}" "${SEED}"
    done
    ;;

  cluster-torture)
    # Randomized leader-kill loop over the replicated broker cluster:
    # produce at acks=quorum, commit offsets, power-cut a random member
    # (random torn tail), fail over, verify zero committed loss and full
    # replica convergence, restore, repeat. FILTER is the round count.
    ROUNDS="${FILTER:-20}"
    BUILD_DIR="${ROOT}/build"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)" --target cluster_torture
    for SEED in 1 2 3; do
      "${BUILD_DIR}/tools/cluster_torture" "${ROUNDS}" "${SEED}"
    done
    ;;

  fleet-smoke)
    # Fleet-scale admission run: 100k simulated devices against one
    # durable broker with an 8 MiB hot-window cap. bench_fleet exits
    # non-zero on any acked-record loss, dropped records, or a cap
    # breach; the greps additionally pin the zero-loss line in the json.
    DEVICES="${FILTER:-100000}"
    BUILD_DIR="${ROOT}/build"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)" --target bench_fleet
    OUT="$(PE_FLEET_DEVICES="${DEVICES}" "${BUILD_DIR}/bench/bench_fleet")"
    echo "${OUT}"
    echo "${OUT}" | grep '"bench":"fleet"' | grep -q '"acked_record_loss":0'
    echo "${OUT}" | grep -q '"cap_respected":true'
    ;;

  quota-storm)
    # Same fleet squeezed through a deliberately tiny per-client quota
    # (0.05 MB/s): the point is that throttles fire AND every throttled
    # producer retries to success — backpressure, zero loss.
    DEVICES="${FILTER:-100000}"
    BUILD_DIR="${ROOT}/build"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)" --target bench_fleet
    OUT="$(PE_FLEET_DEVICES="${DEVICES}" PE_FLEET_QUOTA_MBPS=0.05 \
           "${BUILD_DIR}/bench/bench_fleet")"
    echo "${OUT}"
    echo "${OUT}" | grep '"bench":"fleet"' | grep -q '"acked_record_loss":0'
    echo "${OUT}" | grep -q '"cap_respected":true'
    if echo "${OUT}" | grep -q '"throttled_sends":0,'; then
      echo "error: quota storm produced no throttles — quota not biting" >&2
      exit 1
    fi
    ;;

  transport-smoke)
    # Multi-process transport pipeline, twice:
    #   1. happy path — brokerd + producer + worker as three real OS
    #      processes, FILTER records through the shared-memory ring, the
    #      worker asserting a dense (zero-loss, in-order) sequence.
    #   2. chaos path — a paced producer is SIGKILLed mid-stream; the
    #      broker's heartbeat GC must declare the channel dead and unlink
    #      the ring, and the worker must still drain a dense prefix of
    #      everything push() completed (zero acked loss).
    RECORDS="${FILTER:-1000000}"
    BUILD_DIR="${ROOT}/build"
    cmake -B "${BUILD_DIR}" -S "${ROOT}" -DCMAKE_BUILD_TYPE=RelWithDebInfo
    cmake --build "${BUILD_DIR}" -j"$(nproc)" \
      --target pe_brokerd pe_edge_producer pe_worker
    TMP="$(mktemp -d)"
    trap 'kill "${BROKER_PID:-0}" 2>/dev/null || true; rm -rf "${TMP}"' EXIT

    "${BUILD_DIR}/tools/pe_brokerd" --port 0 \
      --heartbeat-timeout-ms 300 --gc-interval-ms 50 \
      > "${TMP}/brokerd.log" 2>&1 &
    BROKER_PID=$!
    for _ in $(seq 1 100); do
      grep -q "BROKERD ready" "${TMP}/brokerd.log" && break
      sleep 0.1
    done
    PORT="$(grep -o 'port=[0-9]*' "${TMP}/brokerd.log" | head -1 | cut -d= -f2)"
    [[ -n "${PORT}" ]] || { echo "error: brokerd never came up" >&2; exit 1; }
    echo "transport-smoke: brokerd pid=${BROKER_PID} port=${PORT}"

    # --- run 1: happy path, RECORDS records, clean EOF ---
    "${BUILD_DIR}/tools/pe_worker" --port "${PORT}" --channel smoke \
      > "${TMP}/worker.log" 2>&1 &
    WORKER_PID=$!
    "${BUILD_DIR}/tools/pe_edge_producer" --port "${PORT}" --channel smoke \
      --records "${RECORDS}" --payload-bytes 64 > "${TMP}/producer.log" 2>&1
    wait "${WORKER_PID}"
    cat "${TMP}/producer.log" "${TMP}/worker.log"
    grep -q "PRODUCER done pushed=${RECORDS} " "${TMP}/producer.log"
    grep -q "WORKER done consumed=${RECORDS} dense=1 eof=1" "${TMP}/worker.log"

    # --- run 2: kill -9 the producer mid-stream, assert GC + dense drain ---
    "${BUILD_DIR}/tools/pe_worker" --port "${PORT}" --channel victim \
      > "${TMP}/worker2.log" 2>&1 &
    WORKER_PID=$!
    "${BUILD_DIR}/tools/pe_edge_producer" --port "${PORT}" --channel victim \
      --records "${RECORDS}" --pace-us 50 > "${TMP}/producer2.log" 2>&1 &
    VICTIM_PID=$!
    sleep 2
    kill -9 "${VICTIM_PID}"
    echo "transport-smoke: SIGKILLed producer pid=${VICTIM_PID}"
    wait "${WORKER_PID}"
    cat "${TMP}/worker2.log"
    # Dense prefix, ended by producer death (not EOF), zero acked loss.
    grep -q "WORKER done consumed=[0-9]* dense=1 eof=0 dead=1" \
      "${TMP}/worker2.log"

    kill -TERM "${BROKER_PID}"
    wait "${BROKER_PID}" || true
    cat "${TMP}/brokerd.log"
    # The GC saw the dead producer and collected exactly its ring.
    grep -q "dead_producer_gcs=1" "${TMP}/brokerd.log"
    # The victim's shm object is gone from /dev/shm (unlinked by GC).
    if ls /dev/shm/pe_ring_victim_* 2>/dev/null; then
      echo "error: dead producer's ring was not unlinked" >&2
      exit 1
    fi
    echo "transport-smoke: OK (${RECORDS} records, kill -9 recovery clean)"
    ;;

  *)
    echo "error: unknown mode '${MODE}'" >&2
    echo "modes: thread | address | undefined | thread-safety | tidy |" \
         "storage-torture | cluster-torture | fleet-smoke | quota-storm |" \
         "transport-smoke" >&2
    exit 2
    ;;
esac
