// Storage kill-loop torture: crash the log at random points, recover,
// verify, repeat.
//
// Each round appends a random number of records (sizes drawn from a
// seeded Rng, payload bytes derived deterministically from the offset),
// fsyncs at random points, then cuts power keeping a random fraction of
// the unsynced tail — possibly mid-frame. Recovery must then uphold the
// durability contract:
//   1. every record that was fsynced is still there;
//   2. what survives is a dense offset prefix — no holes, no reordering;
//   3. every surviving payload is bit-identical to what was appended
//      (CRC-clean, correct length, correct bytes for its offset);
//   4. the torn tail is truncated, never served;
//   5. appends resume exactly at the recovered end offset.
// Violations print the failing invariant and exit non-zero.
//
// A second phase tortures the group-commit path: concurrent kEverySync
// appenders race a power cut that lands mid-group-commit. Every append
// that RETURNED before the cut must survive recovery byte-for-byte —
// under kEverySync, returning is the durability promise.
//
// Usage: storage_torture [rounds] [seed] [dir]
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "storage/log_dir.h"

namespace {

using namespace pe;
namespace fs = std::filesystem;

/// Deterministic record content for an offset: verification needs no
/// in-memory bookkeeping that a real crash would also lose.
broker::Record record_for(std::uint64_t offset) {
  broker::Record r;
  r.key = "torture-" + std::to_string(offset);
  const std::size_t size = 16 + (offset * 37) % 4096;
  Bytes value(size, 0);
  for (std::size_t i = 0; i < size; ++i) {
    value[i] = static_cast<std::uint8_t>((offset * 131 + i * 7) & 0xff);
  }
  r.value = std::move(value);
  return r;
}

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "TORTURE FAIL: %s\n", what.c_str());
  std::exit(1);
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

/// One appender's deterministic record: content derives from (thread,
/// sequence) so a surviving offset can be verified against what the
/// thread recorded at return time.
broker::Record group_commit_record(int thread, int seq) {
  broker::Record r;
  r.key = "gc-" + std::to_string(thread) + "-" + std::to_string(seq);
  const std::size_t size = 32 + static_cast<std::size_t>(seq % 256);
  r.value = Bytes(size, static_cast<std::uint8_t>((thread * 31 + seq) & 0xff));
  return r;
}

struct AckedAppend {
  std::uint64_t offset;
  int thread;
  int seq;
};

/// Crash-mid-group-commit torture: concurrent kEverySync appenders, a
/// power cut at a random moment, then recovery. Invariant: every offset
/// returned to an appender before the cut survives with identical bytes.
void run_group_commit_torture(int rounds, std::uint64_t seed,
                              const std::string& dir) {
  Rng rng(seed ^ 0x6772634354ull);  // decorrelate from phase one
  std::uint64_t acked_all_rounds = 0;
  for (int round = 0; round < rounds; ++round) {
    fs::remove_all(dir);
    storage::StorageConfig config;
    config.segment_max_bytes = 16 * 1024 + rng.uniform_int(0, 32 * 1024);
    config.flush_policy = storage::FlushPolicy::kEverySync;
    auto opened = storage::LogDir::open(dir, config, nullptr);
    check(opened.ok(), "gc open: " + opened.status().to_string());
    auto& log = *opened.value();

    constexpr int kThreads = 4;
    std::vector<std::vector<AckedAppend>> acked(kThreads);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&log, &acked, t] {
        for (int seq = 0;; ++seq) {
          auto off = log.append(group_commit_record(t, seq),
                                1 + static_cast<std::uint64_t>(seq));
          if (!off.ok()) return;  // power cut landed — stop appending
          acked[static_cast<std::size_t>(t)].push_back(
              {off.value(), t, seq});
        }
      });
    }
    // Let the group-commit pipeline fill, then pull the plug while
    // appenders are mid-flight (some blocked on the leader's fsync).
    std::this_thread::sleep_for(
        std::chrono::milliseconds(rng.uniform_int(1, 25)));
    log.simulate_power_loss(rng.uniform(0.0, 1.0));
    for (auto& t : threads) t.join();

    storage::RecoveryReport report;
    auto reopened = storage::LogDir::open(dir, config, &report);
    check(reopened.ok(), "gc reopen: " + reopened.status().to_string());
    auto& recovered = *reopened.value();
    std::uint64_t acked_total = 0;
    for (const auto& per_thread : acked) {
      acked_total += per_thread.size();
      for (const auto& a : per_thread) {
        check(a.offset < report.next_offset,
              "gc round " + std::to_string(round) +
                  ": acked offset " + std::to_string(a.offset) +
                  " lost (recovered end " +
                  std::to_string(report.next_offset) + ")");
        auto fetched = recovered.fetch(a.offset, 1, ~0ull);
        check(fetched.ok() && !fetched.value().empty(),
              "gc fetch@" + std::to_string(a.offset) + " failed");
        const auto want = group_commit_record(a.thread, a.seq);
        const auto& got = fetched.value()[0];
        check(got.record.key == want.key,
              "gc key mismatch at " + std::to_string(a.offset));
        check(got.record.value == want.value,
              "gc payload mismatch at " + std::to_string(a.offset));
      }
    }
    acked_all_rounds += acked_total;
  }
  // A single round may legitimately get cut before the first group sync
  // completes; across all rounds the appenders must have made progress.
  check(acked_all_rounds > 0, "gc torture made no progress in any round");
  fs::remove_all(dir);
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 50;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;
  const std::string dir =
      argc > 3 ? argv[3]
               : (fs::temp_directory_path() /
                  ("pe_storage_torture_" + std::to_string(seed)))
                     .string();
  fs::remove_all(dir);

  Rng rng(seed);
  std::uint64_t next_offset = 0;   // expected append position
  std::uint64_t synced_floor = 0;  // offsets below this must survive
  std::uint64_t total_torn = 0;

  for (int round = 0; round < rounds; ++round) {
    storage::StorageConfig config;
    // Small segments so crashes regularly land near roll boundaries.
    config.segment_max_bytes = 16 * 1024 + rng.uniform_int(0, 64 * 1024);
    config.flush_policy = storage::FlushPolicy::kNever;  // explicit syncs
    storage::RecoveryReport report;
    auto opened = storage::LogDir::open(dir, config, &report);
    check(opened.ok(), "open: " + opened.status().to_string());
    auto& log = *opened.value();

    // --- verify what recovery kept ---
    check(report.next_offset >= synced_floor,
          "lost fsynced records: recovered to " +
              std::to_string(report.next_offset) + ", fsync floor " +
              std::to_string(synced_floor));
    check(report.next_offset <= next_offset,
          "recovered past the real end: " +
              std::to_string(report.next_offset) + " > " +
              std::to_string(next_offset));
    total_torn += report.torn_bytes_truncated;
    const std::uint64_t start = log.start_offset();
    std::uint64_t at = start;
    while (at < log.end_offset()) {
      auto batch = log.fetch(at, 256, ~0ull);
      check(batch.ok(), "fetch@" + std::to_string(at) + ": " +
                            batch.status().to_string());
      check(!batch.value().empty(),
            "hole at offset " + std::to_string(at));
      for (const auto& got : batch.value()) {
        check(got.offset == at,
              "offset gap: wanted " + std::to_string(at) + ", got " +
                  std::to_string(got.offset));
        const auto want = record_for(got.offset);
        check(got.record.key == want.key,
              "key mismatch at " + std::to_string(got.offset));
        check(got.record.value == want.value,
              "payload mismatch at " + std::to_string(got.offset));
        ++at;
      }
    }
    check(log.fetch(log.end_offset() + 1, 1, ~0ull).status().code() ==
              StatusCode::kOutOfRange,
          "torn tail served past end offset");

    // --- new damage: append, sync some prefix, cut power ---
    next_offset = log.end_offset();
    const int appends = rng.uniform_int(1, 400);
    const int sync_after = rng.uniform_int(0, appends);
    for (int i = 0; i < appends; ++i) {
      auto off = log.append(record_for(next_offset), 1 + next_offset);
      check(off.ok(), "append: " + off.status().to_string());
      check(off.value() == next_offset,
            "append offset skew: wanted " + std::to_string(next_offset) +
                ", got " + std::to_string(off.value()));
      ++next_offset;
      if (i + 1 == sync_after) {
        check(log.sync().ok(), "sync failed");
        synced_floor = next_offset;
      }
    }
    // Occasionally retention-trim the head so long runs stay bounded
    // (whole segments only; never below the fsync floor by contract).
    if (round % 7 == 6) {
      log.apply_retention(/*max_records=*/2000, 0, 0);
    }
    log.simulate_power_loss(rng.uniform(0.0, 1.0));
  }

  std::printf(
      "TORTURE PASS: %d rounds, %llu records appended, %llu torn bytes "
      "truncated across crashes\n",
      rounds, static_cast<unsigned long long>(next_offset),
      static_cast<unsigned long long>(total_torn));
  fs::remove_all(dir);

  // Phase two: crash mid-group-commit with racing kEverySync appenders.
  const int gc_rounds = rounds / 5 + 1;
  run_group_commit_torture(gc_rounds, seed, dir + "_gc");
  std::printf("TORTURE PASS: %d group-commit crash rounds, all acked "
              "records survived\n",
              gc_rounds);
  return 0;
}
