// pe_brokerd: the broker control-plane daemon (one real OS process).
//
// Hosts an in-memory Broker plus the transport ControlPlane: producers
// register shared-memory rings here, workers look them up, offsets are
// committed back through it, and the dead-producer GC collects rings
// whose producer process died. Bulk data NEVER flows through this
// process when a ring is used — that is the control/data-plane split.
//
// Prints one machine-readable ready line on stdout:
//   BROKERD ready port=<port> pid=<pid>
// and a stats line on shutdown. Terminates on SIGINT/SIGTERM.
//
// Usage: pe_brokerd [--port N] [--heartbeat-timeout-ms N] [--gc-interval-ms N]
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "broker/broker.h"
#include "common/clock.h"
#include "telemetry/metrics.h"
#include "transport/control_plane.h"

namespace {

std::atomic<bool> g_stop{false};

void handle_signal(int) { g_stop.store(true); }

std::uint64_t arg_u64(int argc, char** argv, const char* flag,
                      std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pe;

  const auto port = static_cast<std::uint16_t>(arg_u64(argc, argv, "--port", 0));
  const auto hb_timeout_ms = arg_u64(argc, argv, "--heartbeat-timeout-ms", 500);
  const auto gc_interval_ms = arg_u64(argc, argv, "--gc-interval-ms", 100);

  ::signal(SIGINT, handle_signal);
  ::signal(SIGTERM, handle_signal);
  ::signal(SIGPIPE, SIG_IGN);

  auto broker = std::make_shared<broker::Broker>("edge-site", "brokerd");

  transport::ControlPlaneOptions options;
  options.port = port;
  options.heartbeat_timeout = std::chrono::milliseconds(hb_timeout_ms);
  options.gc_interval = std::chrono::milliseconds(gc_interval_ms);
  transport::ControlPlane plane(broker.get(), options);
  if (auto s = plane.start(); !s.ok()) {
    std::fprintf(stderr, "brokerd: %s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("BROKERD ready port=%u pid=%d\n", plane.port(),
              static_cast<int>(::getpid()));
  std::fflush(stdout);

  while (!g_stop.load()) {
    Clock::sleep_exact(std::chrono::milliseconds(50));
  }

  plane.stop();
  const auto counters = tel::MetricsRegistry::global().counters();
  auto counter = [&](const char* name) -> std::uint64_t {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  };
  const auto stats = broker->stats();
  std::printf(
      "BROKERD stats records_in=%llu records_out=%llu throttled=%llu "
      "fetch_throttled=%llu heartbeat_misses=%llu dead_producer_gcs=%llu "
      "frames_in=%llu frames_out=%llu\n",
      static_cast<unsigned long long>(stats.records_in),
      static_cast<unsigned long long>(stats.records_out),
      static_cast<unsigned long long>(stats.throttled),
      static_cast<unsigned long long>(stats.fetch_throttled),
      static_cast<unsigned long long>(counter("transport.heartbeat_misses")),
      static_cast<unsigned long long>(counter("transport.dead_producer_gcs")),
      static_cast<unsigned long long>(counter("transport.frames_in")),
      static_cast<unsigned long long>(counter("transport.frames_out")));
  return 0;
}
