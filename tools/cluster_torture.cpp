// Cluster kill-loop torture: kill random brokers (leaders included) with
// random torn tails, fail over, verify, restore, repeat.
//
// Each round produces a random batch at acks=quorum through the retrying
// cluster producer and commits consumer-group offsets, then power-cuts a
// randomly chosen member keeping a random fraction of its unsynced tail.
// After the failover the replication contract must hold:
//   1. every acked record is still readable at its offset with the exact
//      key that was sent (zero committed-record loss);
//   2. every OK-acked offset commit survives — the group's committed
//      offset never regresses (zero committed-offset loss);
//   3. once the member is restored, all replicas of every partition
//      converge to identical logs (divergent suffixes were truncated);
//   4. the cluster keeps a leader for every partition within the bounded
//      failover window.
// Violations print the failing invariant and exit non-zero.
//
// Usage: cluster_torture [rounds] [seed] [dir]
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "cluster/broker_cluster.h"
#include "cluster/cluster_client.h"

namespace {

using namespace pe;
namespace fs = std::filesystem;
using namespace std::chrono_literals;

constexpr std::uint32_t kPartitions = 2;
constexpr const char* kTopic = "torture";
constexpr const char* kGroup = "torture-readers";

[[noreturn]] void fail(const std::string& what) {
  std::fprintf(stderr, "TORTURE FAIL: %s\n", what.c_str());
  std::exit(1);
}

void check(bool ok, const std::string& what) {
  if (!ok) fail(what);
}

template <typename Pred>
void await(Pred pred, const std::string& what,
           std::chrono::milliseconds wall_budget = 10000ms) {
  Stopwatch sw;
  while (sw.elapsed_ms() < static_cast<double>(wall_budget.count())) {
    if (pred()) return;
    Clock::sleep_exact(1ms);
  }
  check(pred(), "timed out: " + what);
}

broker::Record record_for(std::uint32_t partition, std::uint64_t seq) {
  broker::Record r;
  r.key = "p" + std::to_string(partition) + "-" + std::to_string(seq);
  const std::size_t size = 16 + (seq * 37) % 512;
  Bytes value(size, 0);
  for (std::size_t i = 0; i < size; ++i) {
    value[i] = static_cast<std::uint8_t>((seq * 131 + i * 7) & 0xff);
  }
  r.value = std::move(value);
  return r;
}

/// offset -> key for the whole committed range of a partition, read
/// through the current leader.
std::map<std::uint64_t, std::string> committed_log(
    cluster::BrokerCluster& bc, std::uint32_t partition) {
  std::map<std::uint64_t, std::string> out;
  auto leader = bc.leader(kTopic, partition);
  if (!leader.ok() || leader.value() == cluster::kNoBroker) return out;
  auto start = bc.log_start_offset(kTopic, partition);
  auto hw = bc.high_watermark(kTopic, partition);
  if (!start.ok() || !hw.ok()) return out;
  std::uint64_t at = start.value();
  while (at < hw.value()) {
    broker::FetchSpec spec;
    spec.offset = at;
    spec.max_records = 512;
    auto fetched = bc.fetch(leader.value(), kTopic, partition, spec);
    if (!fetched.ok() || fetched.value().empty()) break;
    for (const auto& r : fetched.value()) {
      out.emplace(r.offset, r.record.key);
      at = r.offset + 1;
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const int rounds = argc > 1 ? std::atoi(argv[1]) : 20;
  const std::uint64_t seed =
      argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 42;
  const std::string dir =
      argc > 3 ? argv[3]
               : (fs::temp_directory_path() /
                  ("pe_cluster_torture_" + std::to_string(seed)))
                     .string();
  fs::remove_all(dir);

  cluster::ClusterOptions options;
  options.brokers = 3;
  options.replication_factor = 3;
  options.heartbeat_interval = 1ms;
  options.session_timeout = 6ms;
  options.ack_timeout = 100ms;
  options.durable_root = dir;
  options.storage.segment_max_bytes = 32 * 1024;
  options.storage.flush_every_n = 64;
  auto bc = std::make_shared<cluster::BrokerCluster>(options);
  cluster::ClusterTopicConfig topic_config;
  topic_config.partitions = kPartitions;
  check(bc->create_topic(kTopic, topic_config).ok(), "create_topic");

  Rng rng(seed);
  cluster::ClusterProducer producer(bc, cluster::RetryConfig{},
                                    cluster::AckPolicy::kQuorum);
  // What the cluster owes us: acked records and OK-acked offset commits.
  std::vector<std::map<std::uint64_t, std::string>> acked(kPartitions);
  std::vector<std::uint64_t> next_seq(kPartitions, 0);
  std::vector<std::uint64_t> committed_floor(kPartitions, 0);
  std::uint64_t total_acked = 0;
  std::uint64_t failovers_seen = 0;

  for (int round = 0; round < rounds; ++round) {
    // --- produce a random batch through the retrying producer ---
    const int sends = rng.uniform_int(20, 120);
    for (int i = 0; i < sends; ++i) {
      const auto p = static_cast<std::uint32_t>(
          rng.uniform_int(0, static_cast<int>(kPartitions) - 1));
      auto r = record_for(p, next_seq[p]);
      const std::string key = r.key;
      auto sent = producer.send(kTopic, p, std::move(r));
      ++next_seq[p];
      if (sent.ok()) {
        acked[p][sent.value()] = key;
        ++total_acked;
      }
    }

    // --- commit the current quorum end as the group's offset ---
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      auto hw = bc->high_watermark(kTopic, p);
      if (!hw.ok() || hw.value() == 0) continue;
      for (int attempt = 0; attempt < 8; ++attempt) {
        auto s = bc->commit_offset(kGroup, {kTopic, p}, hw.value(),
                                   bc->offsets_epoch());
        if (s.ok()) {
          committed_floor[p] = std::max(committed_floor[p], hw.value());
          break;
        }
        if (!s.is_transient()) break;
        Clock::sleep_scaled(2ms);
      }
    }

    // --- power-cut a random member, torn tail and all ---
    const auto victim = static_cast<cluster::BrokerId>(
        rng.uniform_int(0, static_cast<int>(bc->broker_count()) - 1));
    const double keep = rng.uniform(0.0, 1.0);
    const std::uint64_t failovers_before = bc->failover_count();
    check(bc->kill_broker(victim).ok(), "kill_broker");
    await([&] { return bc->all_partitions_led(); },
          "leader election after killing broker-" + std::to_string(victim));
    failovers_seen += bc->failover_count() - failovers_before;

    // --- the contract, under failover ---
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      const auto log = committed_log(*bc, p);
      for (const auto& [offset, key] : acked[p]) {
        auto it = log.find(offset);
        check(it != log.end(), "round " + std::to_string(round) +
                                   ": acked offset " + std::to_string(offset) +
                                   " lost from partition " +
                                   std::to_string(p));
        check(it->second == key, "round " + std::to_string(round) +
                                     ": content diverged at offset " +
                                     std::to_string(offset));
      }
      if (committed_floor[p] > 0) {
        auto committed = bc->committed_offset(kGroup, {kTopic, p});
        check(committed.has_value() && *committed >= committed_floor[p],
              "round " + std::to_string(round) +
                  ": committed offset regressed on partition " +
                  std::to_string(p));
      }
    }

    // --- restore and wait for full convergence before the next round ---
    check(bc->restore_broker(victim, keep).ok(), "restore_broker");
    for (std::uint32_t p = 0; p < kPartitions; ++p) {
      await([&] { return bc->replicas_converged(kTopic, p); },
            "replica convergence on partition " + std::to_string(p));
    }
  }

  std::printf(
      "TORTURE PASS: %d rounds, %llu acked records verified, %llu failovers "
      "survived, zero committed loss\n",
      rounds, static_cast<unsigned long long>(total_acked),
      static_cast<unsigned long long>(failovers_seen));
  bc.reset();
  fs::remove_all(dir);
  return 0;
}
