// Thin entry point for the flag-driven experiment runner.
#include "core/experiment_cli.h"

int main(int argc, char** argv) {
  auto options = pe::core::cli::parse(argc, argv);
  if (!options.ok()) {
    std::fprintf(stderr, "%s\n\n%s", options.status().to_string().c_str(),
                 pe::core::cli::usage().c_str());
    return 2;
  }
  return pe::core::cli::run(options.value());
}
