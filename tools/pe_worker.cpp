// pe_worker: consumer-side worker process.
//
// Looks a channel up at pe_brokerd, maps the producer's shared-memory
// ring, and consumes records as zero-copy views straight out of the
// mapping — validating that sequences form a dense prefix (the zero
// acked-record loss invariant) — while committing its position back
// through the broker's group coordinator over the control socket.
//
// Exit conditions:
//   - producer closed the stream and the ring is drained   -> eof=1
//   - producer process died (channel GC'd dead): drain what
//     push() completed, then leave                         -> dead=1
//
// Prints one verdict line:
//   WORKER done consumed=N dense=0|1 eof=0|1 dead=0|1 committed=N
//
// Usage: pe_worker --port N --channel NAME [--group G] [--commit-every N]
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/clock.h"
#include "transport/control_client.h"
#include "transport/shm_ring.h"

namespace {

std::uint64_t arg_u64(int argc, char** argv, const char* flag,
                      std::uint64_t fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) {
      return std::strtoull(argv[i + 1], nullptr, 10);
    }
  }
  return fallback;
}

std::string arg_str(int argc, char** argv, const char* flag,
                    std::string fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

[[noreturn]] void die(const std::string& what) {
  std::fprintf(stderr, "worker: %s\n", what.c_str());
  std::exit(1);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace pe;

  const auto port = static_cast<std::uint16_t>(arg_u64(argc, argv, "--port", 0));
  const std::string channel = arg_str(argc, argv, "--channel", "sensors");
  const std::string group = arg_str(argc, argv, "--group", "workers");
  const std::uint64_t commit_every = arg_u64(argc, argv, "--commit-every", 4096);
  if (port == 0) die("--port is required");

  auto client = transport::ControlClient::connect(port);
  if (!client.ok()) die(client.status().to_string());

  // The producer may not have registered yet: retry the lookup (transient
  // NOT_FOUND) for a few seconds.
  transport::ChannelLocation loc;
  const auto lookup_deadline = Clock::now() + std::chrono::seconds(10);
  while (true) {
    auto found = client.value().lookup(channel);
    if (found.ok()) {
      loc = found.value();
      break;
    }
    if (Clock::now() >= lookup_deadline) {
      die("lookup: " + found.status().to_string());
    }
    Clock::sleep_exact(std::chrono::milliseconds(10));
  }

  auto ring = transport::ShmRing::open(loc.shm_name);
  if (!ring.ok()) die("open ring: " + ring.status().to_string());
  std::printf("WORKER ready channel=%s shm=%s pid=%d\n", channel.c_str(),
              loc.shm_name.c_str(), static_cast<int>(::getpid()));
  std::fflush(stdout);

  std::uint64_t consumed = 0;
  std::uint64_t committed = 0;
  bool dense = true;
  bool eof = false;
  bool dead = false;
  auto last_liveness_check = Clock::now();

  auto commit_position = [&]() {
    ring.value()->commit();
    if (auto s = client.value().commit(group, loc.topic, loc.partition,
                                       consumed);
        s.ok()) {
      committed = consumed;
    }
  };

  while (true) {
    auto popped = ring.value()->pop();
    if (popped.ok()) {
      const auto& payload = popped.value();
      if (payload.size() >= 8) {
        std::uint64_t seq = 0;
        std::memcpy(&seq, payload.data(), sizeof(seq));
        if (seq != consumed) {
          dense = false;
          std::fprintf(stderr, "worker: gap: expected seq %llu got %llu\n",
                       static_cast<unsigned long long>(consumed),
                       static_cast<unsigned long long>(seq));
        }
      }
      consumed += 1;
      if (consumed % commit_every == 0) commit_position();
      continue;
    }
    if (popped.status().code() != StatusCode::kNotFound) {
      die("pop: " + popped.status().to_string());  // CRC mismatch etc.
    }
    if (ring.value()->drained_and_closed()) {
      eof = true;
      break;
    }
    if (dead) break;  // producer gone and the ring is now empty
    // Empty but not closed: is the producer still alive? Ask the broker
    // every 100 ms (its GC is the liveness authority).
    if (Clock::now() - last_liveness_check > std::chrono::milliseconds(100)) {
      last_liveness_check = Clock::now();
      auto state = client.value().lookup(channel);
      if (state.ok() && state.value().state == "dead") {
        // Keep draining: everything push() completed is still in the
        // mapping (the GC unlinked the name, not our mapping).
        dead = true;
      }
    }
    Clock::sleep_exact(std::chrono::microseconds(200));
  }

  commit_position();
  std::printf("WORKER done consumed=%llu dense=%d eof=%d dead=%d "
              "committed=%llu crc_errors=%llu\n",
              static_cast<unsigned long long>(consumed), dense ? 1 : 0,
              eof ? 1 : 0, dead ? 1 : 0,
              static_cast<unsigned long long>(committed),
              static_cast<unsigned long long>(ring.value()->stats().crc_errors));
  return dense ? 0 : 1;
}
